// Package perfmodel implements the analytical GPU kernel execution
// model at the heart of GROPHECY (paper §II-C): given the synthesized
// performance characteristics of one transformed kernel, it projects
// the kernel's execution time on a described GPU architecture.
//
// The model follows the MWP-CWP approach of Hong & Kim (ISCA'09),
// which the GROPHECY paper builds on: an SM hides memory latency by
// overlapping the memory waiting periods of concurrent warps.
//
//   - MWP (memory warp parallelism) is how many warps can overlap
//     their memory requests, limited by latency/departure-delay, by
//     peak DRAM bandwidth, and by the number of resident warps.
//   - CWP (computation warp parallelism) is how many warps' compute
//     periods fit into one compute-plus-memory period.
//
// Comparing MWP and CWP classifies the kernel as memory-bound or
// compute-bound and yields total cycles.
//
// Deliberate omissions (the designed fidelity gap vs internal/gpusim,
// see DESIGN.md §6): kernel launch overhead, DRAM efficiency below
// peak, extra transactions from data-dependent (irregular) access
// patterns, occupancy tail effects (partial waves), and measurement
// noise. These are what make real measured kernels deviate from this
// projection by the ~15% the paper reports.
package perfmodel

import (
	"fmt"
	"math"

	"grophecy/internal/gpu"
	"grophecy/internal/metrics"
)

// mProjections counts analytical kernel projections — the unit of
// work of the transformation exploration.
var mProjections = metrics.Default.MustCounter("perfmodel_projections_total",
	"analytical kernel projections computed")

// Characteristics summarizes one transformed GPU kernel — the
// quantities GROPHECY synthesizes from a code skeleton for a specific
// transformation (thread mapping, tiling, unrolling).
type Characteristics struct {
	// Name identifies the kernel variant (for reports).
	Name string
	// Threads is the total number of GPU threads launched.
	Threads int64
	// BlockSize is threads per block.
	BlockSize int
	// CompInstsPerThread is the dynamic count of warp-issued
	// arithmetic/control instructions per thread.
	CompInstsPerThread float64
	// GlobalLoadsPerThread and GlobalStoresPerThread count global
	// memory request instructions per thread (after any shared-memory
	// staging removed redundant loads).
	GlobalLoadsPerThread  float64
	GlobalStoresPerThread float64
	// TransactionsPerRequest is the average number of memory
	// transactions one warp-wide request generates: 1-2 when fully
	// coalesced, up to WarpSize when fully scattered.
	TransactionsPerRequest float64
	// BytesPerThread is the total global memory traffic per thread in
	// bytes (for the bandwidth bound).
	BytesPerThread float64
	// RegsPerThread and SharedMemPerBlock are the occupancy inputs.
	RegsPerThread     int
	SharedMemPerBlock int64
	// SyncsPerThread counts __syncthreads() executions per thread.
	SyncsPerThread float64
	// IrregularFraction is the fraction of memory requests whose
	// addresses are data-dependent. The analytical model prices them
	// like regular requests (optimistic); the simulator penalizes
	// them. Kept here so both sides read one struct.
	IrregularFraction float64
}

// Validate reports whether the characteristics are self-consistent.
func (c Characteristics) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("perfmodel: %s: non-positive thread count", c.Name)
	case c.BlockSize <= 0:
		return fmt.Errorf("perfmodel: %s: non-positive block size", c.Name)
	case c.CompInstsPerThread < 0 || c.GlobalLoadsPerThread < 0 || c.GlobalStoresPerThread < 0:
		return fmt.Errorf("perfmodel: %s: negative instruction count", c.Name)
	case c.TransactionsPerRequest < 1:
		return fmt.Errorf("perfmodel: %s: transactions per request %v below 1",
			c.Name, c.TransactionsPerRequest)
	case c.BytesPerThread < 0:
		return fmt.Errorf("perfmodel: %s: negative bytes per thread", c.Name)
	case c.RegsPerThread < 0 || c.SharedMemPerBlock < 0:
		return fmt.Errorf("perfmodel: %s: negative resource use", c.Name)
	case c.SyncsPerThread < 0:
		return fmt.Errorf("perfmodel: %s: negative sync count", c.Name)
	case c.IrregularFraction < 0 || c.IrregularFraction > 1:
		return fmt.Errorf("perfmodel: %s: irregular fraction %v outside [0,1]",
			c.Name, c.IrregularFraction)
	}
	return nil
}

// MemRequestsPerThread is the total global memory requests per thread.
func (c Characteristics) MemRequestsPerThread() float64 {
	return c.GlobalLoadsPerThread + c.GlobalStoresPerThread
}

// Blocks returns the number of thread blocks launched.
func (c Characteristics) Blocks() int64 {
	bs := int64(c.BlockSize)
	return (c.Threads + bs - 1) / bs
}

// WarpsPerBlock returns warps per block (rounded up).
func (c Characteristics) WarpsPerBlock(warpSize int) int64 {
	ws := int64(warpSize)
	return (int64(c.BlockSize) + ws - 1) / ws
}

// TotalBytes returns total global memory traffic.
func (c Characteristics) TotalBytes() float64 {
	return c.BytesPerThread * float64(c.Threads)
}

// BoundKind labels what limits the projected kernel.
type BoundKind string

// The three regimes the MWP-CWP comparison distinguishes.
const (
	// MemoryLatencyBound: too few warps to hide the memory latency.
	MemoryLatencyBound BoundKind = "memory-latency"
	// MemoryBandwidthBound: DRAM throughput is the conveyor.
	MemoryBandwidthBound BoundKind = "memory-bandwidth"
	// ComputeBound: the issue pipeline is saturated.
	ComputeBound BoundKind = "compute"
)

// Projection is the analytical model's output.
type Projection struct {
	// Time is the projected kernel execution time in seconds.
	Time float64
	// Cycles is the projected per-SM cycle count.
	Cycles float64
	// Occ is the occupancy achieved by the launch configuration.
	Occ gpu.Occupancy
	// MWP and CWP are the model's warp-parallelism quantities.
	MWP, CWP float64
	// Bound classifies the limiting resource.
	Bound BoundKind
}

// Project runs the analytical model. It returns an error if the
// characteristics are invalid or the kernel cannot launch on the
// architecture (zero occupancy).
func Project(arch gpu.Arch, ch Characteristics) (Projection, error) {
	if err := arch.Validate(); err != nil {
		return Projection{}, err
	}
	if err := ch.Validate(); err != nil {
		return Projection{}, err
	}
	mProjections.Inc()
	occ := arch.Occupancy(ch.BlockSize, ch.RegsPerThread, ch.SharedMemPerBlock)
	if occ.BlocksPerSM == 0 {
		return Projection{}, fmt.Errorf("perfmodel: %s: zero occupancy (limited by %s)",
			ch.Name, occ.Limiter)
	}

	n := float64(occ.WarpsPerSM) // resident warps per SM

	// Per-warp cycle components. Synchronization serializes warps of
	// a block briefly; price each sync as one extra issue slot per
	// resident warp.
	compCycles := ch.CompInstsPerThread*arch.IssueCyclesPerWarpInst +
		ch.SyncsPerThread*arch.IssueCyclesPerWarpInst*2
	memReqs := ch.MemRequestsPerThread()

	// Departure delay: cycles the memory pipeline is occupied per
	// warp request (one slot per transaction).
	departure := ch.TransactionsPerRequest * arch.TransactionCycles
	// Effective latency of one warp request: base latency plus the
	// serialization of its own transactions.
	memL := arch.MemLatency + (ch.TransactionsPerRequest-1)*arch.TransactionCycles

	totalWarps := float64(ch.Blocks() * ch.WarpsPerBlock(arch.WarpSize))
	// Repetitions: how many rounds of N warps each SM executes.
	repeats := totalWarps / (n * float64(arch.SMs))
	if repeats < 1 {
		repeats = 1
	}

	var cycles float64
	var mwp, cwp float64
	bound := ComputeBound

	if memReqs == 0 {
		// Pure compute kernel: SPs stay busy with N warps round-robin.
		mwp, cwp = n, 1
		cycles = compCycles * n * repeats
	} else {
		memCycles := memL * memReqs

		// MWP: latency-limited, bandwidth-limited, or warp-limited.
		mwpLatency := memL / departure
		bytesPerWarpReq := ch.TransactionsPerRequest * float64(arch.CoalesceSegment)
		bwPerWarp := arch.CoreClock * bytesPerWarpReq / memL
		mwpBandwidth := arch.MemBandwidth / (bwPerWarp * float64(arch.SMs))
		mwp = math.Min(math.Min(mwpLatency, mwpBandwidth), n)
		if mwp < 1 {
			mwp = 1
		}

		cwpFull := (memCycles + compCycles) / math.Max(compCycles, 1)
		cwp = math.Min(cwpFull, n)

		compPerPeriod := compCycles / (memReqs + 1)
		switch {
		case n < mwp || (mwp >= cwp && compCycles == 0):
			// Too few warps to saturate anything: serial latency plus
			// everyone's compute.
			cycles = (memCycles + compCycles*n) * repeats
			bound = MemoryLatencyBound
		case cwp >= mwp:
			// Memory bound: the memory system is the conveyor.
			cycles = (memCycles*n/mwp + compPerPeriod*(mwp-1)) * repeats
			if mwpBandwidth <= mwpLatency && mwpBandwidth <= n {
				bound = MemoryBandwidthBound
			} else {
				bound = MemoryLatencyBound
			}
		default:
			// Compute bound: one memory latency then compute streams.
			cycles = (memL + compCycles*n) * repeats
			bound = ComputeBound
		}
	}

	time := cycles / arch.CoreClock

	// Explicit roofline floor: a kernel can never beat peak DRAM
	// bandwidth on its total traffic.
	if bw := ch.TotalBytes() / arch.MemBandwidth; time < bw {
		time = bw
		bound = MemoryBandwidthBound
	}

	// The driver's nominal launch-plus-sync cost is a known constant
	// of the platform, so the model includes it. (The simulator's
	// driver takes somewhat longer — gpusim.LaunchVariance — which is
	// part of the designed fidelity gap.)
	time += arch.LaunchOverhead

	return Projection{
		Time:   time,
		Cycles: cycles,
		Occ:    occ,
		MWP:    mwp,
		CWP:    cwp,
		Bound:  bound,
	}, nil
}

// ProjectBest runs Project over several candidate characteristics and
// returns the fastest projection and the index of the winning
// candidate. Candidates that cannot launch are skipped; if none can,
// an error is returned.
func ProjectBest(arch gpu.Arch, candidates []Characteristics) (Projection, int, error) {
	bestIdx := -1
	var best Projection
	for i, ch := range candidates {
		p, err := Project(arch, ch)
		if err != nil {
			continue
		}
		if bestIdx < 0 || p.Time < best.Time {
			best, bestIdx = p, i
		}
	}
	if bestIdx < 0 {
		return Projection{}, -1, errNoCandidate(arch)
	}
	return best, bestIdx, nil
}

// errNoCandidate is the shared no-launchable-candidate error, so the
// sequential and parallel selectors fail identically.
func errNoCandidate(arch gpu.Arch) error {
	return fmt.Errorf("perfmodel: no candidate can launch on %s", arch.Name)
}
