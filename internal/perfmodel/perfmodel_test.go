package perfmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"grophecy/internal/gpu"
)

// streaming returns a fully coalesced bandwidth-streaming kernel:
// each thread loads two floats and stores one.
func streaming(threads int64) Characteristics {
	return Characteristics{
		Name:                   "streaming",
		Threads:                threads,
		BlockSize:              256,
		CompInstsPerThread:     20,
		GlobalLoadsPerThread:   2,
		GlobalStoresPerThread:  1,
		TransactionsPerRequest: 2, // two 64B segments per 32-thread warp of float32
		BytesPerThread:         12,
		RegsPerThread:          10,
	}
}

// computeHeavy returns a compute-dominated kernel.
func computeHeavy(threads int64) Characteristics {
	return Characteristics{
		Name:                   "compute",
		Threads:                threads,
		BlockSize:              256,
		CompInstsPerThread:     1000,
		GlobalLoadsPerThread:   1,
		TransactionsPerRequest: 2,
		BytesPerThread:         4,
		RegsPerThread:          16,
	}
}

func TestValidate(t *testing.T) {
	good := streaming(1 << 20)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Characteristics){
		func(c *Characteristics) { c.Threads = 0 },
		func(c *Characteristics) { c.BlockSize = 0 },
		func(c *Characteristics) { c.CompInstsPerThread = -1 },
		func(c *Characteristics) { c.GlobalLoadsPerThread = -1 },
		func(c *Characteristics) { c.TransactionsPerRequest = 0.5 },
		func(c *Characteristics) { c.BytesPerThread = -1 },
		func(c *Characteristics) { c.RegsPerThread = -1 },
		func(c *Characteristics) { c.SharedMemPerBlock = -1 },
		func(c *Characteristics) { c.SyncsPerThread = -1 },
		func(c *Characteristics) { c.IrregularFraction = 1.5 },
	}
	for i, mutate := range mutations {
		c := streaming(1 << 20)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := streaming(1000)
	if c.MemRequestsPerThread() != 3 {
		t.Errorf("MemRequests = %v", c.MemRequestsPerThread())
	}
	if c.Blocks() != 4 { // ceil(1000/256)
		t.Errorf("Blocks = %d", c.Blocks())
	}
	if c.WarpsPerBlock(32) != 8 {
		t.Errorf("WarpsPerBlock = %d", c.WarpsPerBlock(32))
	}
	if c.TotalBytes() != 12000 {
		t.Errorf("TotalBytes = %v", c.TotalBytes())
	}
}

func TestStreamingKernelIsBandwidthBound(t *testing.T) {
	arch := gpu.QuadroFX5600()
	ch := streaming(1 << 22) // 4M threads, 48MB of traffic
	p, err := Project(arch, ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != MemoryBandwidthBound {
		t.Errorf("bound = %v, want memory-bandwidth", p.Bound)
	}
	// Effective bandwidth should be 50-100% of peak.
	bw := ch.TotalBytes() / p.Time
	if bw > arch.MemBandwidth {
		t.Errorf("effective bandwidth %v exceeds peak %v", bw, arch.MemBandwidth)
	}
	if bw < 0.5*arch.MemBandwidth {
		t.Errorf("effective bandwidth %v below half of peak", bw)
	}
}

func TestComputeKernelApproachesPeakIssueRate(t *testing.T) {
	arch := gpu.QuadroFX5600()
	ch := computeHeavy(1 << 22)
	p, err := Project(arch, ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != ComputeBound {
		t.Errorf("bound = %v, want compute", p.Bound)
	}
	// Lower bound: total warp instructions at peak issue rate across
	// all SMs.
	totalWarps := float64(ch.Blocks() * ch.WarpsPerBlock(arch.WarpSize))
	ideal := totalWarps * ch.CompInstsPerThread * arch.IssueCyclesPerWarpInst /
		(float64(arch.SMs) * arch.CoreClock)
	if p.Time < ideal*0.99 {
		t.Errorf("time %v beats ideal issue rate %v", p.Time, ideal)
	}
	if p.Time > ideal*1.5 {
		t.Errorf("time %v more than 1.5x ideal %v for compute-bound kernel", p.Time, ideal)
	}
}

func TestPureComputeKernel(t *testing.T) {
	arch := gpu.QuadroFX5600()
	ch := Characteristics{
		Name:                   "pure",
		Threads:                1 << 20,
		BlockSize:              256,
		CompInstsPerThread:     500,
		TransactionsPerRequest: 1,
		RegsPerThread:          8,
	}
	p, err := Project(arch, ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound != ComputeBound {
		t.Errorf("bound = %v", p.Bound)
	}
	if p.Time <= 0 {
		t.Errorf("time = %v", p.Time)
	}
}

func TestUncoalescedSlowerThanCoalesced(t *testing.T) {
	arch := gpu.QuadroFX5600()
	co := streaming(1 << 20)
	un := co
	un.Name = "uncoalesced"
	un.TransactionsPerRequest = 16 // fully scattered half-warps
	pc, err := Project(arch, co)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := Project(arch, un)
	if err != nil {
		t.Fatal(err)
	}
	if pu.Time <= pc.Time {
		t.Errorf("uncoalesced (%v) not slower than coalesced (%v)", pu.Time, pc.Time)
	}
	// G80 scattering costs roughly the transaction ratio; expect at
	// least 2x here.
	if pu.Time < 2*pc.Time {
		t.Errorf("uncoalesced only %vx slower", pu.Time/pc.Time)
	}
}

func TestMoreThreadsMoreTime(t *testing.T) {
	arch := gpu.QuadroFX5600()
	small, err := Project(arch, streaming(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Project(arch, streaming(1<<22))
	if err != nil {
		t.Fatal(err)
	}
	if large.Time <= small.Time {
		t.Errorf("16x threads not slower: %v vs %v", large.Time, small.Time)
	}
	ratio := large.Time / small.Time
	if ratio < 8 || ratio > 32 {
		t.Errorf("scaling ratio %v implausible for 16x work", ratio)
	}
}

func TestZeroOccupancyError(t *testing.T) {
	arch := gpu.QuadroFX5600()
	ch := streaming(1 << 20)
	ch.BlockSize = 1024 // exceeds MaxThreadsPerBlock=512
	if _, err := Project(arch, ch); err == nil {
		t.Error("unlaunchable kernel accepted")
	}
	ch = streaming(1 << 20)
	ch.SharedMemPerBlock = 64 << 10 // exceeds 16KB/SM
	if _, err := Project(arch, ch); err == nil {
		t.Error("shared-memory-starved kernel accepted")
	}
}

func TestProjectRejectsInvalidInputs(t *testing.T) {
	arch := gpu.QuadroFX5600()
	bad := streaming(0)
	if _, err := Project(arch, bad); err == nil {
		t.Error("invalid characteristics accepted")
	}
	badArch := arch
	badArch.SMs = 0
	if _, err := Project(badArch, streaming(1024)); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestSyncsAddTime(t *testing.T) {
	arch := gpu.QuadroFX5600()
	base := streaming(1 << 20)
	base.GlobalLoadsPerThread = 0
	base.GlobalStoresPerThread = 0
	base.BytesPerThread = 0
	synced := base
	synced.SyncsPerThread = 50
	pb, err := Project(arch, base)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(arch, synced)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Time <= pb.Time {
		t.Errorf("syncs did not add time: %v vs %v", ps.Time, pb.Time)
	}
}

func TestSmallGridLatencyBound(t *testing.T) {
	// 256 threads total: one block on one SM; nothing to overlap.
	arch := gpu.QuadroFX5600()
	ch := streaming(256)
	p, err := Project(arch, ch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time <= 0 {
		t.Errorf("time = %v", p.Time)
	}
	// Even a tiny kernel pays at least one memory round trip.
	minTime := arch.MemLatency / arch.CoreClock
	if p.Time < minTime {
		t.Errorf("time %v below one memory latency %v", p.Time, minTime)
	}
}

func TestProjectBestPicksFastest(t *testing.T) {
	arch := gpu.QuadroFX5600()
	good := streaming(1 << 20)
	bad := good
	bad.Name = "bad"
	bad.TransactionsPerRequest = 16
	unlaunchable := good
	unlaunchable.Name = "unlaunchable"
	unlaunchable.BlockSize = 4096

	p, idx, err := ProjectBest(arch, []Characteristics{bad, good, unlaunchable})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("best idx = %d, want 1", idx)
	}
	if p.Time <= 0 {
		t.Errorf("best time = %v", p.Time)
	}
}

func TestProjectBestAllUnlaunchable(t *testing.T) {
	arch := gpu.QuadroFX5600()
	un := streaming(1 << 20)
	un.BlockSize = 4096
	if _, _, err := ProjectBest(arch, []Characteristics{un}); err == nil {
		t.Error("all-unlaunchable candidate set accepted")
	}
	if _, _, err := ProjectBest(arch, nil); err == nil {
		t.Error("empty candidate set accepted")
	}
}

func TestBoundKindStrings(t *testing.T) {
	for _, b := range []BoundKind{MemoryLatencyBound, MemoryBandwidthBound, ComputeBound} {
		if !strings.Contains(string(b), "-") && b != ComputeBound {
			t.Errorf("bound %q unexpected", b)
		}
	}
}

func TestCrossArchitectureFasterCard(t *testing.T) {
	// The same kernel should be projected faster on a C2050 than on
	// the FX 5600 (more bandwidth, lower latency).
	ch := streaming(1 << 22)
	old, err := Project(gpu.QuadroFX5600(), ch)
	if err != nil {
		t.Fatal(err)
	}
	newer, err := Project(gpu.TeslaC2050(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if newer.Time >= old.Time {
		t.Errorf("C2050 (%v) not faster than FX5600 (%v)", newer.Time, old.Time)
	}
}

func TestQuickProjectionPositiveAndFinite(t *testing.T) {
	arch := gpu.QuadroFX5600()
	prop := func(threadsRaw uint32, comp uint16, loads, trans uint8) bool {
		ch := Characteristics{
			Name:                   "q",
			Threads:                int64(threadsRaw%10_000_000) + 1,
			BlockSize:              256,
			CompInstsPerThread:     float64(comp),
			GlobalLoadsPerThread:   float64(loads % 16),
			TransactionsPerRequest: float64(trans%16) + 1,
			BytesPerThread:         float64(loads%16) * 4,
			RegsPerThread:          10,
		}
		p, err := Project(arch, ch)
		if err != nil {
			return false
		}
		return p.Time > 0 && !math.IsInf(p.Time, 0) && !math.IsNaN(p.Time)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoreTransactionsNeverFaster(t *testing.T) {
	arch := gpu.QuadroFX5600()
	prop := func(t1, t2 uint8) bool {
		a := float64(t1%16) + 1
		b := float64(t2%16) + 1
		if a > b {
			a, b = b, a
		}
		chA := streaming(1 << 20)
		chA.TransactionsPerRequest = a
		chB := streaming(1 << 20)
		chB.TransactionsPerRequest = b
		pa, err := Project(arch, chA)
		if err != nil {
			return false
		}
		pb, err := Project(arch, chB)
		if err != nil {
			return false
		}
		return pb.Time >= pa.Time-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundClassificationSweep(t *testing.T) {
	// Sweeping compute intensity on a fixed memory footprint must
	// cross from a memory-bound regime into the compute-bound regime
	// exactly once.
	arch := gpu.QuadroFX5600()
	wasCompute := false
	for _, comp := range []float64{1, 4, 16, 64, 256, 1024, 4096} {
		ch := streaming(1 << 20)
		ch.CompInstsPerThread = comp
		p, err := Project(arch, ch)
		if err != nil {
			t.Fatal(err)
		}
		isCompute := p.Bound == ComputeBound
		if wasCompute && !isCompute {
			t.Errorf("bound regressed to %v at comp=%v", p.Bound, comp)
		}
		wasCompute = wasCompute || isCompute
	}
	if !wasCompute {
		t.Error("never became compute-bound even at 4096 insts/thread")
	}
}

func TestLaunchOverheadIncludedInProjection(t *testing.T) {
	// The model includes the nominal driver constant (see
	// gpusim.LaunchVariance for the measured side).
	arch := gpu.QuadroFX5600()
	tiny := streaming(64)
	p, err := Project(arch, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if p.Time < arch.LaunchOverhead {
		t.Errorf("projection %v below the launch overhead %v", p.Time, arch.LaunchOverhead)
	}
}
