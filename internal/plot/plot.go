// Package plot renders simple ASCII charts for the experiment
// figures: log-log line charts for the transfer sweeps and linear
// charts for the speedup-vs-iteration series. The paper presents its
// results as figures; these renderings let cmd/paper show the same
// curves in a terminal without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// Marker is the rune plotted for this series.
	Marker rune
	X, Y   []float64
}

// Config controls the chart geometry and scales.
type Config struct {
	Title  string
	Width  int // plot area columns
	Height int // plot area rows
	LogX   bool
	LogY   bool
	XLabel string
	YLabel string
}

// DefaultConfig returns a terminal-friendly chart size.
func DefaultConfig(title string) Config {
	return Config{Title: title, Width: 64, Height: 18}
}

// Render draws the series into an ASCII chart. Series points outside
// the positive domain of a log axis are skipped. An error is returned
// for empty input or degenerate ranges.
func Render(cfg Config, series ...Series) (string, error) {
	if cfg.Width < 8 || cfg.Height < 4 {
		return "", fmt.Errorf("plot: chart %dx%d too small", cfg.Width, cfg.Height)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}

	tx := transformer(cfg.LogX)
	ty := transformer(cfg.LogY)

	// Domain.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		return "", fmt.Errorf("plot: no drawable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	// Canvas.
	grid := make([][]rune, cfg.Height)
	for r := range grid {
		grid[r] = make([]rune, cfg.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(cfg.Width-1)))
			row := cfg.Height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(cfg.Height-1)))
			grid[row][col] = marker
		}
	}

	// Assembly.
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yTop := formatTick(maxY, cfg.LogY)
	yBot := formatTick(minY, cfg.LogY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := 0; r < cfg.Height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case cfg.Height - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", cfg.Width))
	xLeft := formatTick(minX, cfg.LogX)
	xRight := formatTick(maxX, cfg.LogX)
	pad := cfg.Width - len(xLeft) - len(xRight)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLeft, strings.Repeat(" ", pad), xRight)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), cfg.XLabel, cfg.YLabel)
	}
	var legend []string
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelW), strings.Join(legend, ", "))
	return b.String(), nil
}

// transformer returns the axis transform and a validity check.
func transformer(logScale bool) func(float64) (float64, bool) {
	if !logScale {
		return func(v float64) (float64, bool) {
			return v, !math.IsNaN(v) && !math.IsInf(v, 0)
		}
	}
	return func(v float64) (float64, bool) {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return math.Log10(v), true
	}
}

// formatTick renders an axis endpoint, undoing the log transform.
func formatTick(v float64, logScale bool) string {
	if logScale {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}
