package plot

import (
	"math"
	"strings"
	"testing"
)

func line(n int, f func(i int) (float64, float64)) Series {
	s := Series{Name: "s", Marker: '*'}
	for i := 0; i < n; i++ {
		x, y := f(i)
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	return s
}

func TestRenderLinear(t *testing.T) {
	s := line(10, func(i int) (float64, float64) { return float64(i), float64(2 * i) })
	out, err := Render(DefaultConfig("test chart"), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test chart", "legend: * s", "+", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// An increasing line puts a marker in the top-right region and
	// bottom-left region.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l[strings.Index(l, "|"):])
		}
	}
	if len(plotLines) < 4 {
		t.Fatalf("too few plot rows:\n%s", out)
	}
	top, bottom := plotLines[0], plotLines[len(plotLines)-1]
	if !strings.Contains(top, "*") {
		t.Error("no marker on the top row for the max point")
	}
	if !strings.Contains(bottom, "*") {
		t.Error("no marker on the bottom row for the min point")
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Error("increasing series should peak to the right")
	}
}

func TestRenderLogLog(t *testing.T) {
	s := line(20, func(i int) (float64, float64) {
		x := math.Pow(2, float64(i))
		return x, 1e-5 + 4e-10*x
	})
	cfg := DefaultConfig("transfer sweep")
	cfg.LogX, cfg.LogY = true, true
	cfg.XLabel, cfg.YLabel = "bytes", "seconds"
	out, err := Render(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x: bytes, y: seconds") {
		t.Error("axis labels missing")
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	a := line(5, func(i int) (float64, float64) { return float64(i), 1 })
	a.Name, a.Marker = "flat", 'o'
	b := line(5, func(i int) (float64, float64) { return float64(i), float64(i) })
	b.Name, b.Marker = "rising", 'x'
	out, err := Render(DefaultConfig(""), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "o flat") || !strings.Contains(out, "x rising") {
		t.Error("legend incomplete")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("markers missing")
	}
}

func TestRenderErrors(t *testing.T) {
	s := line(3, func(i int) (float64, float64) { return float64(i), float64(i) })
	if _, err := Render(Config{Width: 2, Height: 2}, s); err == nil {
		t.Error("tiny chart accepted")
	}
	if _, err := Render(DefaultConfig("")); err == nil {
		t.Error("no series accepted")
	}
	bad := Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}
	if _, err := Render(DefaultConfig(""), bad); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// All points invalid on a log axis.
	neg := Series{Name: "neg", X: []float64{-1, -2}, Y: []float64{1, 2}}
	cfg := DefaultConfig("")
	cfg.LogX = true
	if _, err := Render(cfg, neg); err == nil {
		t.Error("undrawable series accepted")
	}
}

func TestRenderSkipsInvalidPointsOnLogAxis(t *testing.T) {
	s := Series{Name: "mixed", X: []float64{0, 1, 10, 100}, Y: []float64{1, 1, 2, 3}}
	cfg := DefaultConfig("")
	cfg.LogX = true
	out, err := Render(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("valid points not drawn")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := line(4, func(i int) (float64, float64) { return 5, 7 })
	if _, err := Render(DefaultConfig(""), s); err != nil {
		t.Fatalf("degenerate range should render: %v", err)
	}
}

func TestDefaultMarker(t *testing.T) {
	s := Series{Name: "m", X: []float64{0, 1}, Y: []float64{0, 1}}
	out, err := Render(DefaultConfig(""), s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* m") {
		t.Error("default marker not applied")
	}
}
