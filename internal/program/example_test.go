package program_test

import (
	"fmt"

	"grophecy/internal/program"
	"grophecy/internal/skeleton"
)

// Example analyzes a two-phase pipeline where the intermediate stays
// on the GPU: phase 2 re-uploads nothing.
func Example() {
	n := int64(1 << 20)
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	c := skeleton.NewArray("c", skeleton.Float32, n)
	phase := func(name string, src, dst *skeleton.Array) program.Phase {
		k := &skeleton.Kernel{
			Name:  name,
			Loops: []skeleton.Loop{skeleton.ParLoop("i", n)},
			Stmts: []skeleton.Statement{{
				Accesses: []skeleton.Access{
					skeleton.LoadOf(src, skeleton.Idx("i")),
					skeleton.StoreOf(dst, skeleton.Idx("i")),
				},
				Flops: 2,
			}},
		}
		return program.Phase{Seq: &skeleton.Sequence{
			Name: name, Kernels: []*skeleton.Kernel{k}, Iterations: 1,
		}}
	}

	plan, err := program.Analyze(&program.Program{
		Name:   "two-phase",
		Phases: []program.Phase{phase("p1", a, b), phase("p2", b, c)},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("phase 1: %d uploads, %d downloads\n",
		len(plan.Phases[0].Uploads), len(plan.Phases[0].Downloads))
	fmt.Printf("phase 2: %d uploads, %d downloads\n",
		len(plan.Phases[1].Uploads), len(plan.Phases[1].Downloads))
	// Output:
	// phase 1: 1 uploads, 0 downloads
	// phase 2: 0 uploads, 2 downloads
}
