// Package program extends GROPHECY++ from one offloaded region to
// whole applications: a Program is a list of offloaded phases with
// CPU work between them, and the data-usage analysis tracks which
// array sections remain valid in GPU memory across phases.
//
// The paper analyzes a single kernel sequence; its related-work
// section points at the generalization ("compiler techniques that
// automate the data transfer between the CPU and GPU" — Jablin et
// al., PLDI'11 — where "our performance modeling framework could help
// such a technique ... by identifying which array sections need to be
// transferred"). This package is exactly that analysis:
//
//   - a phase's uploads are its reads not already resident on the GPU
//     (either produced by an earlier phase or uploaded before);
//   - inter-phase CPU code that modifies an array invalidates its GPU
//     copy, forcing a re-upload if a later phase reads it;
//   - downloads happen when inter-phase CPU code reads an array, and
//     once more at program end for results that never came back;
//   - temporaries never cross the bus, exactly as in single-phase
//     analysis.
package program

import (
	"fmt"
	"strings"

	"grophecy/internal/brs"
	"grophecy/internal/datausage"
	"grophecy/internal/skeleton"
)

// Phase is one offloaded region plus the CPU code that follows it.
type Phase struct {
	// Seq is the offloaded kernel sequence.
	Seq *skeleton.Sequence
	// Hints are the per-phase data-usage hints.
	Hints datausage.Hints
	// CPUReads lists arrays the inter-phase CPU code consumes after
	// this phase: their freshly-written sections must come back.
	CPUReads []*skeleton.Array
	// CPUWrites lists arrays the inter-phase CPU code modifies: their
	// GPU copies become stale.
	CPUWrites []*skeleton.Array
}

// Program is a whole application: phases in execution order.
type Program struct {
	Name   string
	Phases []Phase
}

// Validate checks the program structure.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("program: empty name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("program: %q has no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Seq == nil {
			return fmt.Errorf("program: %q phase %d has no sequence", p.Name, i)
		}
		if err := ph.Seq.Validate(); err != nil {
			return fmt.Errorf("program: %q phase %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// PhasePlan is the transfer plan of one phase under residency
// tracking.
type PhasePlan struct {
	// Uploads happen before the phase's kernels; Downloads after
	// (driven by CPUReads, or by program end for the last phase).
	Uploads   []datausage.Transfer
	Downloads []datausage.Transfer
}

// Plan is the whole program's transfer schedule.
type Plan struct {
	Phases []PhasePlan
}

// UploadBytes totals CPU-to-GPU traffic across phases.
func (p Plan) UploadBytes() int64 {
	var n int64
	for _, ph := range p.Phases {
		for _, tr := range ph.Uploads {
			n += tr.Bytes()
		}
	}
	return n
}

// DownloadBytes totals GPU-to-CPU traffic across phases.
func (p Plan) DownloadBytes() int64 {
	var n int64
	for _, ph := range p.Phases {
		for _, tr := range ph.Downloads {
			n += tr.Bytes()
		}
	}
	return n
}

// TransferCount totals individual transfers.
func (p Plan) TransferCount() int {
	n := 0
	for _, ph := range p.Phases {
		n += len(ph.Uploads) + len(ph.Downloads)
	}
	return n
}

// String renders the schedule.
func (p Plan) String() string {
	var b strings.Builder
	for i, ph := range p.Phases {
		fmt.Fprintf(&b, "phase %d:\n", i+1)
		for _, tr := range ph.Uploads {
			fmt.Fprintf(&b, "  %s\n", tr)
		}
		for _, tr := range ph.Downloads {
			fmt.Fprintf(&b, "  %s\n", tr)
		}
	}
	return b.String()
}

// Analyze runs residency-aware data usage analysis over the program.
func Analyze(p *Program) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}

	resident := brs.NewSet() // sections valid in GPU memory
	// pendingDownload holds GPU-written, not-yet-downloaded sections
	// of non-temporary arrays.
	pendingDownload := brs.NewSet()

	var plan Plan
	for i, ph := range p.Phases {
		// The phase's own dataflow (what it reads before writing,
		// what it writes) comes from the single-sequence analyzer;
		// residency then filters the uploads.
		local, err := datausage.Analyze(ph.Seq, ph.Hints)
		if err != nil {
			return Plan{}, fmt.Errorf("program: phase %d: %w", i, err)
		}

		var pp PhasePlan
		for _, up := range local.Uploads {
			if resident.Covers(up.Section) {
				continue // already on the GPU and still valid
			}
			pp.Uploads = append(pp.Uploads, up)
			resident.Add(up.Section)
		}
		// Everything the phase writes becomes resident and pending.
		for _, down := range local.Downloads {
			resident.Add(down.Section)
			pendingDownload.Add(down.Section)
		}
		// Temporaries become resident too (they live in GPU memory),
		// but never pend for download; local analysis already
		// excluded them from Downloads.

		// Inter-phase CPU reads force the pending sections of those
		// arrays down now.
		isLast := i == len(p.Phases)-1
		demanded := make(map[*skeleton.Array]bool, len(ph.CPUReads))
		for _, arr := range ph.CPUReads {
			demanded[arr] = true
		}
		for _, sec := range pendingDownload.Sections() {
			if !demanded[sec.Array] && !isLast {
				continue
			}
			pp.Downloads = append(pp.Downloads, datausage.Transfer{
				Dir:     datausage.Download,
				Section: sec,
			})
		}
		// Downloaded sections no longer pend.
		for _, tr := range pp.Downloads {
			pendingDownload.Remove(tr.Array())
		}

		// Inter-phase CPU writes invalidate GPU copies.
		for _, arr := range ph.CPUWrites {
			resident.Remove(arr)
			pendingDownload.Remove(arr)
		}

		plan.Phases = append(plan.Phases, pp)
	}
	return plan, nil
}
