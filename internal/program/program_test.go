package program

import (
	"strings"
	"testing"

	"grophecy/internal/datausage"
	"grophecy/internal/skeleton"
)

// elementwise builds a one-kernel sequence computing dst = f(src).
func elementwise(name string, src, dst *skeleton.Array, n int64) *skeleton.Sequence {
	k := &skeleton.Kernel{
		Name:  name,
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(src, skeleton.Idx("i")),
				skeleton.StoreOf(dst, skeleton.Idx("i")),
			},
			Flops: 2,
		}},
	}
	return &skeleton.Sequence{Name: name, Kernels: []*skeleton.Kernel{k}, Iterations: 1}
}

func TestTwoPhaseResidencyAvoidsReupload(t *testing.T) {
	// Phase 1: b = f(a). Phase 2: c = g(b). The CPU does not touch b
	// in between, so phase 2 must NOT re-upload b.
	const n = 1 << 16
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	c := skeleton.NewArray("c", skeleton.Float32, n)
	p := &Program{
		Name: "pipeline",
		Phases: []Phase{
			{Seq: elementwise("p1", a, b, n)},
			{Seq: elementwise("p2", b, c, n)},
		},
	}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 2 {
		t.Fatalf("phases = %d", len(plan.Phases))
	}
	// Phase 1 uploads a only.
	if len(plan.Phases[0].Uploads) != 1 || plan.Phases[0].Uploads[0].Array() != a {
		t.Errorf("phase 1 uploads = %v", plan.Phases[0].Uploads)
	}
	// Phase 2 uploads nothing: b is resident.
	if len(plan.Phases[1].Uploads) != 0 {
		t.Errorf("phase 2 re-uploads: %v", plan.Phases[1].Uploads)
	}
	// Final phase downloads everything pending: b and c.
	downNames := names(plan.Phases[1].Downloads)
	if len(downNames) != 2 || !has(downNames, "b") || !has(downNames, "c") {
		t.Errorf("final downloads = %v", downNames)
	}
	// Phase 1 downloads nothing (CPU doesn't read b between phases).
	if len(plan.Phases[0].Downloads) != 0 {
		t.Errorf("phase 1 downloads = %v", plan.Phases[0].Downloads)
	}
}

func TestCPUWriteInvalidatesResidency(t *testing.T) {
	// Same pipeline, but the CPU modifies b between the phases:
	// phase 2 must re-upload it.
	const n = 1 << 16
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	c := skeleton.NewArray("c", skeleton.Float32, n)
	p := &Program{
		Name: "invalidated",
		Phases: []Phase{
			{Seq: elementwise("p1", a, b, n), CPUReads: []*skeleton.Array{b},
				CPUWrites: []*skeleton.Array{b}},
			{Seq: elementwise("p2", b, c, n)},
		},
	}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 must download b (CPU reads it)...
	if d := names(plan.Phases[0].Downloads); !has(d, "b") {
		t.Errorf("phase 1 downloads = %v, want b", d)
	}
	// ...and phase 2 must upload the CPU-modified b again.
	if u := names(plan.Phases[1].Uploads); !has(u, "b") {
		t.Errorf("phase 2 uploads = %v, want b", u)
	}
}

func TestCPUReadWithoutWriteKeepsResidency(t *testing.T) {
	// CPU reads b (download) but does not modify it: phase 2 still
	// reuses the GPU copy.
	const n = 1 << 16
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	c := skeleton.NewArray("c", skeleton.Float32, n)
	p := &Program{
		Name: "readonly",
		Phases: []Phase{
			{Seq: elementwise("p1", a, b, n), CPUReads: []*skeleton.Array{b}},
			{Seq: elementwise("p2", b, c, n)},
		},
	}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := names(plan.Phases[0].Downloads); !has(d, "b") {
		t.Errorf("phase 1 downloads = %v, want b", d)
	}
	if len(plan.Phases[1].Uploads) != 0 {
		t.Errorf("phase 2 re-uploads after read-only CPU use: %v", plan.Phases[1].Uploads)
	}
	// b already downloaded and unchanged on the GPU; the final flush
	// must not move it again.
	if d := names(plan.Phases[1].Downloads); has(d, "b") {
		t.Errorf("b downloaded twice: %v", d)
	}
}

func TestSinglePhaseMatchesDatausage(t *testing.T) {
	// A one-phase program degenerates to the single-sequence analysis.
	const n = 4096
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	seq := elementwise("only", a, b, n)
	p := &Program{Name: "single", Phases: []Phase{{Seq: seq}}}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	local := datausage.MustAnalyze(seq, datausage.Hints{})
	if plan.UploadBytes() != local.UploadBytes() {
		t.Errorf("uploads %d vs %d", plan.UploadBytes(), local.UploadBytes())
	}
	if plan.DownloadBytes() != local.DownloadBytes() {
		t.Errorf("downloads %d vs %d", plan.DownloadBytes(), local.DownloadBytes())
	}
}

func TestResidencySavingsQuantified(t *testing.T) {
	// Ten chained phases over the same array: naive per-phase
	// analysis moves the array 10x each way; residency moves it once
	// in, once out.
	const n = 1 << 18
	img := skeleton.NewArray("img", skeleton.Float32, n)
	var phases []Phase
	for i := 0; i < 10; i++ {
		phases = append(phases, Phase{Seq: inplace("step", i, img, n)})
	}
	p := &Program{Name: "chain", Phases: phases}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UploadBytes() != n*4 {
		t.Errorf("uploads = %d bytes, want one image", plan.UploadBytes())
	}
	if plan.DownloadBytes() != n*4 {
		t.Errorf("downloads = %d bytes, want one image", plan.DownloadBytes())
	}
	if plan.TransferCount() != 2 {
		t.Errorf("transfers = %d, want 2", plan.TransferCount())
	}
}

func inplace(base string, i int, arr *skeleton.Array, n int64) *skeleton.Sequence {
	k := &skeleton.Kernel{
		Name:  base + string(rune('a'+i)),
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(arr, skeleton.Idx("i")),
				skeleton.StoreOf(arr, skeleton.Idx("i")),
			},
			Flops: 1,
		}},
	}
	return &skeleton.Sequence{Name: k.Name, Kernels: []*skeleton.Kernel{k}, Iterations: 1}
}

func TestValidateRejects(t *testing.T) {
	if err := (&Program{}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	if err := (&Program{Name: "p"}).Validate(); err == nil {
		t.Error("phase-less program accepted")
	}
	if err := (&Program{Name: "p", Phases: []Phase{{}}}).Validate(); err == nil {
		t.Error("nil sequence accepted")
	}
	if _, err := Analyze(&Program{}); err == nil {
		t.Error("Analyze accepted invalid program")
	}
}

func TestPlanString(t *testing.T) {
	const n = 4096
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	p := &Program{Name: "s", Phases: []Phase{{Seq: elementwise("k", a, b, n)}}}
	plan, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	if !strings.Contains(out, "phase 1") || !strings.Contains(out, "upload a") {
		t.Errorf("plan string incomplete:\n%s", out)
	}
}

func names(trs []datausage.Transfer) []string {
	var out []string
	for _, tr := range trs {
		out = append(out, tr.Array().Name)
	}
	return out
}

func has(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
