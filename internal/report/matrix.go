package report

import (
	"fmt"
	"strings"

	"grophecy/internal/core"
	"grophecy/internal/units"
)

// MatrixRow is one hardware target's projection outcome in a
// cross-target comparison.
type MatrixRow struct {
	// Target is the registry name ("c2050-pcie3").
	Target string
	// Hardware is the component summary (GPU + CPU + bus).
	Hardware string
	// Report is the full projection on that target.
	Report core.Report
}

// Matrix renders a cross-target comparison for one workload: per
// registered target, the projected speedup with and without data
// transfer modeling, the transfer share of GPU time, and whether
// transfer modeling flips the port verdict — the paper's §V-C
// sensitivity question as a table.
func Matrix(workload string, rows []MatrixRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "no targets\n"
	}
	r0 := rows[0].Report
	fmt.Fprintf(&b, "cross-target projection: %s %s, %d iteration(s)\n\n",
		workload, r0.DataSize, r0.Iterations)

	nameW := len("target")
	for _, row := range rows {
		if len(row.Target) > nameW {
			nameW = len(row.Target)
		}
	}
	fmt.Fprintf(&b, "%-*s  %9s  %11s  %9s  %8s  %s\n",
		nameW, "target", "full", "kernel-only", "xfer", "gpu time", "verdict")
	for _, row := range rows {
		r := row.Report
		verdict := "port"
		switch {
		case r.SpeedupKernelOnly() > 1 && r.SpeedupFull() < 1:
			verdict = "flipped by transfers"
		case r.SpeedupFull() < 1:
			verdict = "keep on CPU"
		}
		fmt.Fprintf(&b, "%-*s  %8.2fx  %10.2fx  %7.0f%%  %8s  %s\n",
			nameW, row.Target,
			r.SpeedupFull(), r.SpeedupKernelOnly(),
			100*r.PercentTransfer(), units.FormatSeconds(r.PredTotalGPU()),
			verdict)
	}

	b.WriteString("\nhardware:\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", nameW, row.Target, row.Hardware)
	}
	b.WriteString("\nfull = kernel + transfer modeling; kernel-only reproduces plain\nGROPHECY; xfer = transfer share of predicted GPU time.\n")
	return b.String()
}

// BackendCell is one backend's projection of one workload in a
// cross-backend comparison.
type BackendCell struct {
	// Backend is the registry name ("analytic", "fitted").
	Backend string
	// Report is the full projection through that backend.
	Report core.Report
}

// BackendRow is one workload's predictions across every backend.
type BackendRow struct {
	Workload string
	DataSize string
	Cells    []BackendCell
}

// Disagreement returns the relative spread of the row's predicted
// total GPU times: 100*(max-min)/min, in percent. Zero when the
// backends agree exactly or the row is empty.
func (r BackendRow) Disagreement() float64 {
	var min, max float64
	for i, c := range r.Cells {
		t := c.Report.PredTotalGPU()
		if i == 0 || t < min {
			min = t
		}
		if i == 0 || t > max {
			max = t
		}
	}
	if min <= 0 {
		return 0
	}
	return 100 * (max - min) / min
}

// BackendMatrix renders a cross-backend comparison on one hardware
// target: per workload, each backend's predicted total GPU time and
// full speedup, plus the disagreement column — how far apart the
// backends' predictions are, as a percentage of the lowest. Large
// disagreement flags workloads whose verdict depends on which model
// you trust; small disagreement means the cheap analytic model was
// already enough.
func BackendMatrix(targetName, hardware string, backends []string, rows []BackendRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "no workloads\n"
	}
	fmt.Fprintf(&b, "cross-backend projection on %s (%s)\n\n", targetName, hardware)

	nameW := len("workload")
	for _, row := range rows {
		if n := len(row.Workload + " " + row.DataSize); n > nameW {
			nameW = n
		}
	}
	colW := len("0.00x/000.0s")
	fmt.Fprintf(&b, "%-*s", nameW, "workload")
	for _, name := range backends {
		w := colW
		if len(name) > w {
			w = len(name)
		}
		fmt.Fprintf(&b, "  %*s", w, name)
	}
	fmt.Fprintf(&b, "  %s\n", "disagreement")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s", nameW, row.Workload+" "+row.DataSize)
		for i, c := range row.Cells {
			w := colW
			if len(backends[i]) > w {
				w = len(backends[i])
			}
			cell := fmt.Sprintf("%.2fx/%s",
				c.Report.SpeedupFull(), units.FormatSeconds(c.Report.PredTotalGPU()))
			fmt.Fprintf(&b, "  %*s", w, cell)
		}
		fmt.Fprintf(&b, "  %11.1f%%\n", row.Disagreement())
	}
	b.WriteString("\ncells: projected full speedup / predicted total GPU time per\nbackend; disagreement = 100*(max-min)/min over the predicted GPU\ntimes of one row.\n")
	return b.String()
}
