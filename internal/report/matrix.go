package report

import (
	"fmt"
	"strings"

	"grophecy/internal/core"
	"grophecy/internal/units"
)

// MatrixRow is one hardware target's projection outcome in a
// cross-target comparison.
type MatrixRow struct {
	// Target is the registry name ("c2050-pcie3").
	Target string
	// Hardware is the component summary (GPU + CPU + bus).
	Hardware string
	// Report is the full projection on that target.
	Report core.Report
}

// Matrix renders a cross-target comparison for one workload: per
// registered target, the projected speedup with and without data
// transfer modeling, the transfer share of GPU time, and whether
// transfer modeling flips the port verdict — the paper's §V-C
// sensitivity question as a table.
func Matrix(workload string, rows []MatrixRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "no targets\n"
	}
	r0 := rows[0].Report
	fmt.Fprintf(&b, "cross-target projection: %s %s, %d iteration(s)\n\n",
		workload, r0.DataSize, r0.Iterations)

	nameW := len("target")
	for _, row := range rows {
		if len(row.Target) > nameW {
			nameW = len(row.Target)
		}
	}
	fmt.Fprintf(&b, "%-*s  %9s  %11s  %9s  %8s  %s\n",
		nameW, "target", "full", "kernel-only", "xfer", "gpu time", "verdict")
	for _, row := range rows {
		r := row.Report
		verdict := "port"
		switch {
		case r.SpeedupKernelOnly() > 1 && r.SpeedupFull() < 1:
			verdict = "flipped by transfers"
		case r.SpeedupFull() < 1:
			verdict = "keep on CPU"
		}
		fmt.Fprintf(&b, "%-*s  %8.2fx  %10.2fx  %7.0f%%  %8s  %s\n",
			nameW, row.Target,
			r.SpeedupFull(), r.SpeedupKernelOnly(),
			100*r.PercentTransfer(), units.FormatSeconds(r.PredTotalGPU()),
			verdict)
	}

	b.WriteString("\nhardware:\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", nameW, row.Target, row.Hardware)
	}
	b.WriteString("\nfull = kernel + transfer modeling; kernel-only reproduces plain\nGROPHECY; xfer = transfer share of predicted GPU time.\n")
	return b.String()
}
