package report

import (
	"strings"
	"testing"

	"grophecy/internal/core"
)

func row(name string, predKernel, predXfer, cpu float64) MatrixRow {
	return MatrixRow{
		Target:   name,
		Hardware: "GPU + CPU + bus",
		Report: core.Report{
			Name: "HotSpot", DataSize: "1024 x 1024", Iterations: 1,
			PredKernelTime: predKernel, PredTransferTime: predXfer,
			MeasKernelTime: predKernel, MeasTransferTime: predXfer,
			CPUTime: cpu,
		},
	}
}

func TestMatrixVerdicts(t *testing.T) {
	out := Matrix("HotSpot", []MatrixRow{
		row("fast-bus", 1, 1, 10),   // full 5.00x: port
		row("slow-bus", 1, 20, 10),  // kernel-only 10x, full 0.48x: flipped
		row("weak-gpu", 20, 20, 10), // kernel-only 0.5x too: keep on CPU
	})
	for _, want := range []string{
		"cross-target projection: HotSpot 1024 x 1024, 1 iteration(s)",
		"fast-bus", "slow-bus", "weak-gpu",
		"flipped by transfers",
		"keep on CPU",
		"GPU + CPU + bus",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "port"); n != 1 {
		t.Errorf("%d plain port verdicts, want 1:\n%s", n, out)
	}
}

func TestMatrixEmpty(t *testing.T) {
	if out := Matrix("HotSpot", nil); out != "no targets\n" {
		t.Errorf("empty matrix rendered %q", out)
	}
}
