// Package report renders core.Report as text or JSON. It is the
// single rendering path shared by the grophecy CLI and the golden
// tests (internal/golden), so that what the tests pin byte-for-byte
// is exactly what users see.
package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"grophecy/internal/core"
	"grophecy/internal/units"
)

// Text renders the full human-readable projection report: the data
// transfer plan, the chosen transformation per kernel, predicted vs
// measured kernel and transfer times, and the projected speedups with
// and without data transfer modeling.
func Text(r core.Report) string {
	var b strings.Builder

	fmt.Fprintf(&b, "workload %s %s, %d iteration(s)\n\n", r.Name, r.DataSize, r.Iterations)

	b.WriteString("transfer plan (data usage analysis):\n")
	b.WriteString(indent(r.Plan.String()))
	b.WriteString("\n")

	b.WriteString("kernels (best transformation per GROPHECY exploration):\n")
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "  %-22s %-22s predicted %10s  measured %10s\n",
			k.Kernel, k.Variant.Name,
			units.FormatSeconds(k.Predicted), units.FormatSeconds(k.Measured))
	}
	b.WriteString("\n")

	b.WriteString("transfers (pinned memory, linear PCIe model):\n")
	for _, tr := range r.Transfers {
		fmt.Fprintf(&b, "  %-46s predicted %10s  measured %10s\n",
			tr.Transfer, units.FormatSeconds(tr.Predicted), units.FormatSeconds(tr.Measured))
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "totals over %d iteration(s):\n", r.Iterations)
	fmt.Fprintf(&b, "  kernel time:    predicted %10s  measured %10s (err %4.1f%%)\n",
		units.FormatSeconds(r.PredKernelTime), units.FormatSeconds(r.MeasKernelTime),
		100*r.KernelErr())
	fmt.Fprintf(&b, "  transfer time:  predicted %10s  measured %10s (err %4.1f%%)\n",
		units.FormatSeconds(r.PredTransferTime), units.FormatSeconds(r.MeasTransferTime),
		100*r.TransferErr())
	fmt.Fprintf(&b, "  total GPU time: predicted %10s  measured %10s\n",
		units.FormatSeconds(r.PredTotalGPU()), units.FormatSeconds(r.MeasTotalGPU()))
	fmt.Fprintf(&b, "  CPU time (8-thread OpenMP baseline): %s\n", units.FormatSeconds(r.CPUTime))
	fmt.Fprintf(&b, "  transfer share of GPU time: %.0f%%\n\n", 100*r.PercentTransfer())

	b.WriteString("projected GPU speedup:\n")
	fmt.Fprintf(&b, "  measured:                 %6.2fx\n", r.MeasuredSpeedup())
	fmt.Fprintf(&b, "  GROPHECY++ (kernel+xfer): %6.2fx  (error %.1f%%)\n",
		r.SpeedupFull(), 100*r.ErrFull())
	fmt.Fprintf(&b, "  kernel only (GROPHECY):   %6.2fx  (error %.1f%%)\n",
		r.SpeedupKernelOnly(), 100*r.ErrKernelOnly())
	fmt.Fprintf(&b, "  transfer only:            %6.2fx  (error %.1f%%)\n",
		r.SpeedupTransferOnly(), 100*r.ErrTransferOnly())

	if r.SpeedupKernelOnly() > 1 && r.MeasuredSpeedup() < 1 {
		b.WriteString("\nNOTE: ignoring data transfer predicts a GPU win, but the port\n")
		b.WriteString("would actually be a slowdown — transfer modeling flips the verdict.\n")
	}
	return b.String()
}

// jsonReport is the machine-readable projection: the report's raw
// numbers plus the derived quantities a consumer would otherwise have
// to recompute.
type jsonReport struct {
	core.Report
	Derived struct {
		MeasuredSpeedup     float64 `json:"measuredSpeedup"`
		SpeedupFull         float64 `json:"speedupFull"`
		SpeedupKernelOnly   float64 `json:"speedupKernelOnly"`
		SpeedupTransferOnly float64 `json:"speedupTransferOnly"`
		ErrFull             float64 `json:"errFull"`
		ErrKernelOnly       float64 `json:"errKernelOnly"`
		PercentTransfer     float64 `json:"percentTransfer"`
	} `json:"derived"`
}

// JSON renders the report as indented JSON, including the derived
// speedup and error figures.
func JSON(r core.Report) ([]byte, error) {
	out := jsonReport{Report: r}
	out.Derived.MeasuredSpeedup = r.MeasuredSpeedup()
	out.Derived.SpeedupFull = r.SpeedupFull()
	out.Derived.SpeedupKernelOnly = r.SpeedupKernelOnly()
	out.Derived.SpeedupTransferOnly = r.SpeedupTransferOnly()
	out.Derived.ErrFull = r.ErrFull()
	out.Derived.ErrKernelOnly = r.ErrKernelOnly()
	out.Derived.PercentTransfer = r.PercentTransfer()
	return json.MarshalIndent(out, "", "  ")
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}
