// Package rng provides a small deterministic pseudo-random number
// generator used by all GROPHECY++ hardware simulators.
//
// Everything in this repository that injects "measurement noise" — the
// PCIe bus, the GPU timing simulator, the CPU execution model — draws
// from a Stream seeded explicitly by the caller, so every experiment,
// test, and benchmark is bit-for-bit reproducible. The generator is
// splitmix64, which is tiny, fast, has a full 2^64 period per stream,
// and passes the statistical tests that matter for noise injection.
package rng

import "math"

// Stream is a deterministic splitmix64 random stream. The zero value
// is a valid stream seeded with 0; prefer New to make seeding explicit.
type Stream struct {
	state uint64
}

// New returns a Stream seeded with the given value. Distinct seeds
// yield statistically independent streams.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// State returns the stream's current internal state. Together with
// SetState it lets a caller snapshot a stream at a known point (e.g.
// right after transfer-model calibration) and later fast-forward a
// freshly seeded stream to that exact point, reproducing the draw
// sequence bit for bit without replaying the draws.
func (s *Stream) State() uint64 { return s.state }

// SetState restores a state previously captured with State.
func (s *Stream) SetState(state uint64) { s.state = state }

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 random bits scaled into [0,1), the standard construction.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns a normally distributed float64 with the given mean
// and standard deviation, via the Box-Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalFactor returns a multiplicative noise factor whose log is
// normally distributed with mean 0 and the given sigma. For small
// sigma the factor is centered near 1, making it a natural model for
// run-to-run timing jitter: time_measured = time_true * factor.
func (s *Stream) LogNormalFactor(sigma float64) float64 {
	return math.Exp(s.Normal(0, sigma))
}

// Exponential returns an exponentially distributed float64 with the
// given mean. Used for occasional long-tail delays (e.g. OS
// scheduling hiccups during a transfer).
func (s *Stream) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Fork returns a new Stream whose seed is derived from this stream.
// Use it to hand independent sub-streams to components without manual
// seed bookkeeping.
func (s *Stream) Fork() *Stream {
	return New(s.Uint64())
}
