package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds agreed on %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	const mean, stddev = 5.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(sd-stddev) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~%v", sd, stddev)
	}
}

func TestLogNormalFactorCenteredNearOne(t *testing.T) {
	s := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		f := s.LogNormalFactor(0.02)
		if f <= 0 {
			t.Fatalf("LogNormalFactor returned non-positive %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("LogNormalFactor(0.02) mean = %v, want ~1", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(19)
	const n = 200000
	const want = 3.5
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(want)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Exponential mean = %v, want ~%v", mean, want)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(29)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams agreed on %d of 100 draws", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Stream
	// Must not panic and must produce values in range.
	for i := 0; i < 100; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("zero-value stream Float64 out of range: %v", f)
		}
	}
}

func TestQuickFloat64AlwaysInRange(t *testing.T) {
	prop := func(seed uint64, draws uint8) bool {
		s := New(seed)
		for i := 0; i < int(draws); i++ {
			if f := s.Float64(); f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminismProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	a := New(42)
	for i := 0; i < 57; i++ {
		a.Uint64()
	}
	// A fresh stream fast-forwarded to a's snapshot must continue with
	// exactly a's sequence — the property the calibration cache
	// (internal/engine) relies on.
	b := New(999)
	b.SetState(a.State())
	for i := 0; i < 1000; i++ {
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("restored stream diverged at draw %d: %d != %d", i, got, want)
		}
	}
}
