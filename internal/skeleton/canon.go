// Canonical content encoding of skeletons.
//
// AppendCanonical produces a deterministic byte encoding of a
// kernel's full content — loops, statements, accesses, and the
// referenced arrays — such that two kernels encode identically if and
// only if every analysis in this repository (transformation
// enumeration, BRS section building, data usage) would treat them
// identically. The encoding is the content-addressed cache key used
// by the memoization layers in internal/transform and internal/brs:
// skeletons are re-parsed per request in the daemon, so pointer
// identity never survives across requests, but content identity does.
//
// Arrays are encoded by per-kernel identity index plus (on first
// reference) their full content. The index keeps two distinct arrays
// that happen to share name and shape distinguishable — analyses such
// as distinct-array register pressure count array *objects*, not
// array names.
//
// The encoding is not meant to be parsed back; it only needs to be
// injective on content. Fields are separated by bytes that cannot
// appear inside strconv integer output ('|', markers) so no two
// different structures concatenate to the same bytes.
package skeleton

import "strconv"

// AppendCanonical appends the canonical content encoding of the
// expression: the constant, then each referenced variable with its
// coefficient in sorted order, or an irregular marker. Zero-coefficient
// entries are dropped, so "x" and "x + 0*y" encode identically — they
// index identically too.
func (e IndexExpr) AppendCanonical(dst []byte) []byte {
	if e.Irregular {
		return append(dst, "?|"...)
	}
	dst = strconv.AppendInt(dst, e.Const, 10)
	for _, v := range e.Vars() {
		dst = append(dst, '+')
		dst = strconv.AppendInt(dst, e.Coeffs[v], 10)
		dst = append(dst, '*')
		dst = append(dst, v...)
	}
	return append(dst, '|')
}

// appendCanonical appends the array's full content.
func (a *Array) appendCanonical(dst []byte) []byte {
	dst = append(dst, a.Name...)
	dst = append(dst, '[')
	for _, d := range a.Dims {
		dst = strconv.AppendInt(dst, d, 10)
		dst = append(dst, ',')
	}
	dst = append(dst, ']')
	dst = strconv.AppendInt(dst, int64(a.Elem), 10)
	if a.Sparse {
		dst = append(dst, 'S')
	}
	if a.Temporary {
		dst = append(dst, 'T')
	}
	return append(dst, '|')
}

// AppendCanonical appends the canonical content encoding of the loop.
func (l Loop) AppendCanonical(dst []byte) []byte {
	dst = append(dst, l.Var...)
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, l.Lower, 10)
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, l.Upper, 10)
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, l.Step, 10)
	if l.Parallel {
		dst = append(dst, 'P')
	}
	return append(dst, '|')
}

// AppendCanonical appends the canonical content encoding of the whole
// kernel. Equal encodings imply analyses of the two kernels produce
// deeply equal results.
func (k *Kernel) AppendCanonical(dst []byte) []byte {
	dst = append(dst, 'K')
	dst = append(dst, k.Name...)
	dst = append(dst, '|')

	dst = append(dst, 'L')
	dst = strconv.AppendInt(dst, int64(len(k.Loops)), 10)
	dst = append(dst, '|')
	for _, l := range k.Loops {
		dst = l.AppendCanonical(dst)
	}

	// Arrays are numbered in first-reference order; the first
	// reference inlines the content so renamed-but-identical arrays
	// still encode differently, and repeated references to one object
	// encode differently from references to two identical objects.
	ids := make(map[*Array]int)

	dst = append(dst, 'S')
	dst = strconv.AppendInt(dst, int64(len(k.Stmts)), 10)
	dst = append(dst, '|')
	for _, s := range k.Stmts {
		dst = strconv.AppendInt(dst, int64(s.Flops), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(s.IntOps), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(s.Transcendentals), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(s.Depth), 10)
		dst = append(dst, '|')
		for _, ac := range s.Accesses {
			if ac.Kind == Load {
				dst = append(dst, 'l')
			} else {
				dst = append(dst, 's')
			}
			id, seen := ids[ac.Array]
			if !seen {
				id = len(ids)
				ids[ac.Array] = id
			}
			dst = strconv.AppendInt(dst, int64(id), 10)
			if !seen {
				dst = append(dst, '=')
				dst = ac.Array.appendCanonical(dst)
			}
			for _, e := range ac.Index {
				dst = e.AppendCanonical(dst)
			}
			dst = append(dst, ';')
		}
	}
	return dst
}

// AppendCanonical appends the canonical content encoding of the
// sequence: its name, iteration count, and every kernel, with array
// identity numbered across the whole sequence (inter-kernel reuse of
// one array object is part of the content — it is what keeps data
// resident on the GPU between kernels).
func (s *Sequence) AppendCanonical(dst []byte) []byte {
	dst = append(dst, 'Q')
	dst = append(dst, s.Name...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(s.Iterations), 10)
	dst = append(dst, '|')
	ids := make(map[*Array]int)
	for _, k := range s.Kernels {
		dst = k.AppendCanonical(dst)
		// Stamp the sequence-wide identity of each kernel's arrays so
		// two sequences differing only in cross-kernel array sharing
		// encode differently.
		for _, ac := range k.Accesses() {
			id, seen := ids[ac.Array]
			if !seen {
				id = len(ids)
				ids[ac.Array] = id
			}
			dst = strconv.AppendInt(dst, int64(id), 10)
			dst = append(dst, ',')
		}
		dst = append(dst, '|')
	}
	return dst
}
