package skeleton

import (
	"bytes"
	"testing"
)

func canonKernel(in, out *Array) *Kernel {
	return &Kernel{
		Name:  "k",
		Loops: []Loop{ParLoop("i", 256), ParLoop("j", 256)},
		Stmts: []Statement{{
			Accesses: []Access{
				LoadOf(in, Idx("i"), Idx("j")),
				LoadOf(in, IdxPlus("i", -1), Idx("j")),
				StoreOf(out, Idx("i"), Idx("j")),
			},
			Flops: 4,
		}},
	}
}

func TestKernelCanonicalIsContentAddressed(t *testing.T) {
	// Two structurally identical kernels built from *different* array
	// objects with the same content must encode identically: the
	// daemon re-parses skeletons per request, so memoization only
	// works if content, not pointer identity, drives the key.
	k1 := canonKernel(NewArray("in", Float32, 256, 256), NewArray("out", Float32, 256, 256))
	k2 := canonKernel(NewArray("in", Float32, 256, 256), NewArray("out", Float32, 256, 256))
	if !bytes.Equal(k1.AppendCanonical(nil), k2.AppendCanonical(nil)) {
		t.Fatal("identical-content kernels encode differently")
	}
}

func TestKernelCanonicalSeparatesContent(t *testing.T) {
	in := NewArray("in", Float32, 256, 256)
	out := NewArray("out", Float32, 256, 256)
	base := canonKernel(in, out)
	enc := func(k *Kernel) []byte { return k.AppendCanonical(nil) }

	mutations := map[string]*Kernel{
		"loop size": {
			Name:  base.Name,
			Loops: []Loop{ParLoop("i", 512), ParLoop("j", 256)},
			Stmts: base.Stmts,
		},
		"sequential loop": {
			Name:  base.Name,
			Loops: []Loop{ParLoop("i", 256), SeqLoop("j", 256)},
			Stmts: base.Stmts,
		},
		"flop count": {
			Name:  base.Name,
			Loops: base.Loops,
			Stmts: []Statement{{Accesses: base.Stmts[0].Accesses, Flops: 5}},
		},
		"index shift": {
			Name:  base.Name,
			Loops: base.Loops,
			Stmts: []Statement{{
				Accesses: []Access{
					LoadOf(in, Idx("i"), Idx("j")),
					LoadOf(in, IdxPlus("i", 1), Idx("j")),
					StoreOf(out, Idx("i"), Idx("j")),
				},
				Flops: 4,
			}},
		},
		"elem type": canonKernel(NewArray("in", Float64, 256, 256), out),
		"irregular index": {
			Name:  base.Name,
			Loops: base.Loops,
			Stmts: []Statement{{
				Accesses: []Access{
					LoadOf(in, IdxIrregular(), Idx("j")),
					LoadOf(in, IdxPlus("i", -1), Idx("j")),
					StoreOf(out, Idx("i"), Idx("j")),
				},
				Flops: 4,
			}},
		},
	}
	baseEnc := enc(base)
	for name, k := range mutations {
		if bytes.Equal(baseEnc, enc(k)) {
			t.Errorf("%s change does not change the encoding", name)
		}
	}
}

func TestKernelCanonicalArrayIdentity(t *testing.T) {
	// One array object referenced twice vs two identical-content
	// array objects: different content (distinct-array analyses count
	// objects), so the encodings must differ.
	a := NewArray("a", Float32, 1024)
	b := NewArray("a", Float32, 1024)
	one := &Kernel{
		Name:  "k",
		Loops: []Loop{ParLoop("i", 1024)},
		Stmts: []Statement{{Accesses: []Access{
			LoadOf(a, Idx("i")),
			StoreOf(a, Idx("i")),
		}}},
	}
	two := &Kernel{
		Name:  "k",
		Loops: []Loop{ParLoop("i", 1024)},
		Stmts: []Statement{{Accesses: []Access{
			LoadOf(a, Idx("i")),
			StoreOf(b, Idx("i")),
		}}},
	}
	if bytes.Equal(one.AppendCanonical(nil), two.AppendCanonical(nil)) {
		t.Fatal("array identity is not part of the encoding")
	}
}

func TestSequenceCanonicalCrossKernelIdentity(t *testing.T) {
	// The same holds across kernels of a sequence: sharing one array
	// between two kernels (data stays resident) differs from each
	// kernel owning its identical-content copy.
	mk := func(name string, arr *Array) *Kernel {
		return &Kernel{
			Name:  name,
			Loops: []Loop{ParLoop("i", 1024)},
			Stmts: []Statement{{Accesses: []Access{
				LoadOf(arr, Idx("i")),
				StoreOf(arr, Idx("i")),
			}}},
		}
	}
	shared := NewArray("a", Float32, 1024)
	s1 := &Sequence{Name: "s", Iterations: 2,
		Kernels: []*Kernel{mk("k1", shared), mk("k2", shared)}}
	s2 := &Sequence{Name: "s", Iterations: 2,
		Kernels: []*Kernel{mk("k1", NewArray("a", Float32, 1024)), mk("k2", NewArray("a", Float32, 1024))}}
	if bytes.Equal(s1.AppendCanonical(nil), s2.AppendCanonical(nil)) {
		t.Fatal("cross-kernel array identity is not part of the sequence encoding")
	}
	if !bytes.Equal(s1.AppendCanonical(nil), s1.AppendCanonical(nil)) {
		t.Fatal("sequence encoding is not deterministic")
	}
}
