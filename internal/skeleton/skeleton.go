// Package skeleton defines the code-skeleton intermediate
// representation that GROPHECY++ consumes.
//
// A code skeleton (paper §II-C, Figure 1) is a simplified description
// of CPU code: loop nests, data parallelism, computational intensity,
// and array access patterns. It deliberately omits the actual
// arithmetic — the framework only needs the *shape* of the
// computation to explore GPU transformations and project performance.
//
// The representation here follows the paper's needs directly:
//
//   - Array: a named dense (or sparse/irregular) array with static
//     extents and element type. Arrays carry the user hints the paper
//     describes: Temporary ("written data that serve as temporaries
//     need not be transferred back", §III-B) and hints constraining
//     conservative sparse transfers.
//   - Loop: a counted loop with static bounds; Parallel marks
//     data-parallel dimensions that a GPU mapping may assign to
//     threads.
//   - Access: an array reference with one affine index expression per
//     array dimension (the basis of Bounded Regular Section analysis),
//     or an irregular index for indirect accesses such as A[col[j]].
//   - Statement: a group of accesses plus instruction counts.
//   - Kernel: a loop nest with a body of statements.
//   - Sequence: an ordered list of kernels offloaded together — the
//     unit over which data usage analysis runs.
package skeleton

import (
	"fmt"
	"sort"
	"strings"
)

// ElemType enumerates the element types that appear in the paper's
// benchmarks (float kernels, int index vectors, complex Monte Carlo
// amplitudes).
type ElemType int

// The supported element types; Size gives their byte widths.
const (
	Float32 ElemType = iota
	Float64
	Int32
	Int64
	Complex64
	Complex128
)

// Size returns the element size in bytes.
func (t ElemType) Size() int64 {
	switch t {
	case Float32, Int32:
		return 4
	case Float64, Int64, Complex64:
		return 8
	case Complex128:
		return 16
	default:
		panic(fmt.Sprintf("skeleton: unknown element type %d", int(t)))
	}
}

// String implements fmt.Stringer.
func (t ElemType) String() string {
	switch t {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Complex64:
		return "complex64"
	case Complex128:
		return "complex128"
	default:
		return fmt.Sprintf("ElemType(%d)", int(t))
	}
}

// Valid reports whether t is a defined element type.
func (t ElemType) Valid() bool { return t >= Float32 && t <= Complex128 }

// Array describes a named array in the skeleton.
type Array struct {
	Name string
	// Dims are the static extents, outermost (slowest-varying) first;
	// the layout is row-major, matching C/CUDA.
	Dims []int64
	Elem ElemType
	// Sparse marks irregularly-indexed arrays (e.g. CSR value/column
	// vectors). For sparse arrays the BRS is unknown and the
	// conservative transfer rule applies unless a hint bounds it
	// (§III-B).
	Sparse bool
	// Temporary is the user hint that this array holds intermediate
	// data the CPU never consumes: it must still live in GPU memory
	// but need not be transferred back (§III-B).
	Temporary bool
}

// NewArray constructs a dense array. It panics on invalid shapes,
// since skeletons are built by code, not parsed from user input.
func NewArray(name string, elem ElemType, dims ...int64) *Array {
	a := &Array{Name: name, Dims: dims, Elem: elem}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// Validate checks structural sanity.
func (a *Array) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("skeleton: array with empty name")
	}
	if !a.Elem.Valid() {
		return fmt.Errorf("skeleton: array %q has invalid element type", a.Name)
	}
	if len(a.Dims) == 0 {
		return fmt.Errorf("skeleton: array %q has no dimensions", a.Name)
	}
	for i, d := range a.Dims {
		if d <= 0 {
			return fmt.Errorf("skeleton: array %q dim %d has non-positive extent %d", a.Name, i, d)
		}
	}
	return nil
}

// Count returns the total number of elements.
func (a *Array) Count() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total array footprint in bytes.
func (a *Array) Bytes() int64 { return a.Count() * a.Elem.Size() }

// RowStride returns the distance in elements between consecutive
// values of dimension dim (row-major layout): the product of the
// extents of all later dimensions.
func (a *Array) RowStride(dim int) int64 {
	if dim < 0 || dim >= len(a.Dims) {
		panic(fmt.Sprintf("skeleton: array %q has no dim %d", a.Name, dim))
	}
	s := int64(1)
	for i := dim + 1; i < len(a.Dims); i++ {
		s *= a.Dims[i]
	}
	return s
}

// String implements fmt.Stringer, e.g. "temp[1024][1024]float32".
func (a *Array) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	for _, d := range a.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	b.WriteString(a.Elem.String())
	return b.String()
}

// IndexExpr is an affine index expression over the loop variables of
// the enclosing nest: index = Const + sum(Coeffs[v] * v).
//
// Irregular marks an index whose value is data-dependent (indirect
// addressing); such accesses have no bounded regular section.
type IndexExpr struct {
	Coeffs    map[string]int64
	Const     int64
	Irregular bool
}

// Idx returns the expression "v" — coefficient 1 on loop variable v.
func Idx(v string) IndexExpr {
	return IndexExpr{Coeffs: map[string]int64{v: 1}}
}

// IdxPlus returns "v + c".
func IdxPlus(v string, c int64) IndexExpr {
	return IndexExpr{Coeffs: map[string]int64{v: 1}, Const: c}
}

// IdxScaled returns "a*v + c".
func IdxScaled(v string, a, c int64) IndexExpr {
	return IndexExpr{Coeffs: map[string]int64{v: a}, Const: c}
}

// IdxConst returns the constant expression "c".
func IdxConst(c int64) IndexExpr { return IndexExpr{Const: c} }

// IdxSum returns "a1*v1 + a2*v2 + c" for a two-variable affine index
// (e.g. row*width + col flattened indexing).
func IdxSum(v1 string, a1 int64, v2 string, a2, c int64) IndexExpr {
	return IndexExpr{Coeffs: map[string]int64{v1: a1, v2: a2}, Const: c}
}

// IdxIrregular returns an irregular (data-dependent) index.
func IdxIrregular() IndexExpr { return IndexExpr{Irregular: true} }

// Uses reports whether the expression references loop variable v with
// a nonzero coefficient.
func (e IndexExpr) Uses(v string) bool { return e.Coeffs[v] != 0 }

// Coeff returns the coefficient of loop variable v (0 if absent).
func (e IndexExpr) Coeff(v string) int64 { return e.Coeffs[v] }

// Vars returns the referenced loop variables in sorted order.
func (e IndexExpr) Vars() []string {
	vars := make([]string, 0, len(e.Coeffs))
	for v, c := range e.Coeffs {
		if c != 0 {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	return vars
}

// String implements fmt.Stringer, e.g. "i+1", "2*j", "?" (irregular).
func (e IndexExpr) String() string {
	if e.Irregular {
		return "?"
	}
	var parts []string
	for _, v := range e.Vars() {
		c := e.Coeffs[v]
		switch c {
		case 1:
			parts = append(parts, v)
		case -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	s := strings.Join(parts, "+")
	return strings.ReplaceAll(s, "+-", "-")
}

// AccessKind distinguishes loads from stores.
type AccessKind int

// Load reads an array element; Store writes one.
const (
	Load AccessKind = iota
	Store
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Access is one array reference in a statement.
type Access struct {
	Array *Array
	Kind  AccessKind
	// Index has one expression per array dimension.
	Index []IndexExpr
}

// LoadOf builds a load access with the given per-dimension indices.
func LoadOf(a *Array, idx ...IndexExpr) Access {
	return Access{Array: a, Kind: Load, Index: idx}
}

// StoreOf builds a store access.
func StoreOf(a *Array, idx ...IndexExpr) Access {
	return Access{Array: a, Kind: Store, Index: idx}
}

// Irregular reports whether any index dimension is irregular or the
// array itself is marked sparse. This is the conservative view used
// for transfer planning: a sparse array's extent is data-dependent
// even when the access pattern is a plain stream.
func (ac Access) Irregular() bool {
	return ac.Array.Sparse || ac.IrregularIndex()
}

// IrregularIndex reports whether any index dimension is
// data-dependent. This is the view relevant to memory coalescing: a
// CSR value stream (sparse array, affine index) coalesces perfectly,
// while a gather through an index vector does not.
func (ac Access) IrregularIndex() bool {
	for _, e := range ac.Index {
		if e.Irregular {
			return true
		}
	}
	return false
}

// Validate checks the access against its array.
func (ac Access) Validate() error {
	if ac.Array == nil {
		return fmt.Errorf("skeleton: access with nil array")
	}
	if len(ac.Index) != len(ac.Array.Dims) {
		return fmt.Errorf("skeleton: access to %q has %d indices, array has %d dims",
			ac.Array.Name, len(ac.Index), len(ac.Array.Dims))
	}
	return nil
}

// String implements fmt.Stringer, e.g. "load temp[i+1][j]".
func (ac Access) String() string {
	var b strings.Builder
	b.WriteString(ac.Kind.String())
	b.WriteByte(' ')
	b.WriteString(ac.Array.Name)
	for _, e := range ac.Index {
		fmt.Fprintf(&b, "[%s]", e.String())
	}
	return b.String()
}

// FlattenedCoeff returns the coefficient of loop variable v in the
// flattened (row-major element offset) index of the access, or false
// if any index dimension is irregular. A flattened coefficient of 1
// means consecutive iterations of v touch consecutive elements — the
// memory-coalescing condition on the GPU.
func (ac Access) FlattenedCoeff(v string) (int64, bool) {
	if ac.IrregularIndex() {
		return 0, false
	}
	var total int64
	for dim, e := range ac.Index {
		total += e.Coeff(v) * ac.Array.RowStride(dim)
	}
	return total, true
}

// Statement groups the accesses and instruction counts of one loop
// body statement. Instruction counts are per dynamic execution.
type Statement struct {
	// Accesses lists the array references, loads before stores by
	// convention (loads produce the operands of the store).
	Accesses []Access
	// Flops counts floating-point operations (adds/muls).
	Flops int
	// IntOps counts integer/address operations beyond implicit
	// indexing.
	IntOps int
	// Transcendentals counts long-latency ops (exp, log, sqrt, div).
	Transcendentals int
	// Depth is the loop nesting depth the statement executes at: it
	// runs once per iteration of Loops[0:Depth]. Zero means the
	// innermost level (all loops). A value between the number of
	// parallel loops and the total loop count hoists the statement
	// out of the inner sequential loops — e.g. an accumulator that is
	// read once, updated across a reduction loop in registers, and
	// stored once.
	Depth int
}

// Validate checks every access.
func (s Statement) Validate() error {
	for i, ac := range s.Accesses {
		if err := ac.Validate(); err != nil {
			return fmt.Errorf("statement access %d: %w", i, err)
		}
	}
	if s.Flops < 0 || s.IntOps < 0 || s.Transcendentals < 0 {
		return fmt.Errorf("skeleton: negative instruction count")
	}
	return nil
}

// Loop is one counted loop of a nest.
type Loop struct {
	Var string
	// Lower and Upper bound the half-open iteration range
	// [Lower, Upper); Step is the increment.
	Lower, Upper int64
	Step         int64
	// Parallel marks loops whose iterations are independent and may
	// be mapped to GPU threads.
	Parallel bool
}

// ParLoop builds a parallel loop over [0, n).
func ParLoop(v string, n int64) Loop {
	return Loop{Var: v, Lower: 0, Upper: n, Step: 1, Parallel: true}
}

// SeqLoop builds a sequential loop over [0, n).
func SeqLoop(v string, n int64) Loop {
	return Loop{Var: v, Lower: 0, Upper: n, Step: 1}
}

// Trips returns the iteration count of the loop.
func (l Loop) Trips() int64 {
	if l.Step <= 0 || l.Upper <= l.Lower {
		return 0
	}
	return (l.Upper - l.Lower + l.Step - 1) / l.Step
}

// Validate checks the loop shape.
func (l Loop) Validate() error {
	if l.Var == "" {
		return fmt.Errorf("skeleton: loop with empty variable name")
	}
	if l.Step <= 0 {
		return fmt.Errorf("skeleton: loop %q has non-positive step %d", l.Var, l.Step)
	}
	if l.Upper < l.Lower {
		return fmt.Errorf("skeleton: loop %q has upper %d below lower %d", l.Var, l.Upper, l.Lower)
	}
	return nil
}

// Kernel is one offloadable loop nest.
type Kernel struct {
	Name string
	// Loops, outermost first. Parallel loops must precede sequential
	// ones for the GPU mapping (the paper's kernels all have this
	// form; enforce it in Validate).
	Loops []Loop
	// Stmts form the body of the innermost loop.
	Stmts []Statement
}

// Validate checks kernel structure: non-empty, valid loops and
// statements, unique loop variables, parallel-outside-sequential, and
// all index expressions referencing declared loop variables.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("skeleton: kernel with empty name")
	}
	if len(k.Loops) == 0 {
		return fmt.Errorf("skeleton: kernel %q has no loops", k.Name)
	}
	if len(k.Stmts) == 0 {
		return fmt.Errorf("skeleton: kernel %q has no statements", k.Name)
	}
	seen := make(map[string]bool)
	seenSeq := false
	for _, l := range k.Loops {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("kernel %q: %w", k.Name, err)
		}
		if seen[l.Var] {
			return fmt.Errorf("skeleton: kernel %q reuses loop variable %q", k.Name, l.Var)
		}
		seen[l.Var] = true
		if l.Parallel && seenSeq {
			return fmt.Errorf("skeleton: kernel %q has parallel loop %q inside sequential loop", k.Name, l.Var)
		}
		if !l.Parallel {
			seenSeq = true
		}
	}
	nPar := len(k.ParallelLoops())
	for i, s := range k.Stmts {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("kernel %q statement %d: %w", k.Name, i, err)
		}
		if s.Depth != 0 && (s.Depth < nPar || s.Depth > len(k.Loops)) {
			return fmt.Errorf("skeleton: kernel %q statement %d depth %d outside [%d,%d]",
				k.Name, i, s.Depth, nPar, len(k.Loops))
		}
		inScope := make(map[string]bool)
		for _, l := range k.Loops[:k.effectiveDepth(s)] {
			inScope[l.Var] = true
		}
		for _, ac := range s.Accesses {
			for _, e := range ac.Index {
				for _, v := range e.Vars() {
					if !seen[v] {
						return fmt.Errorf("skeleton: kernel %q access %s references undeclared loop variable %q",
							k.Name, ac.String(), v)
					}
					if !inScope[v] {
						return fmt.Errorf("skeleton: kernel %q access %s references loop variable %q below its depth",
							k.Name, ac.String(), v)
					}
				}
			}
		}
	}
	return nil
}

// effectiveDepth resolves a statement's Depth (0 means innermost).
func (k *Kernel) effectiveDepth(s Statement) int {
	if s.Depth == 0 {
		return len(k.Loops)
	}
	return s.Depth
}

// ExecsPerThread returns how many times the statement executes per
// GPU thread under the natural one-thread-per-parallel-iteration
// mapping: the product of the trip counts of the sequential loops
// enclosing it.
func (k *Kernel) ExecsPerThread(s Statement) int64 {
	depth := k.effectiveDepth(s)
	n := int64(1)
	for _, l := range k.Loops[:depth] {
		if !l.Parallel {
			n *= l.Trips()
		}
	}
	return n
}

// ParallelLoops returns the parallel loops of the nest.
func (k *Kernel) ParallelLoops() []Loop {
	var out []Loop
	for _, l := range k.Loops {
		if l.Parallel {
			out = append(out, l)
		}
	}
	return out
}

// SequentialLoops returns the non-parallel loops of the nest.
func (k *Kernel) SequentialLoops() []Loop {
	var out []Loop
	for _, l := range k.Loops {
		if !l.Parallel {
			out = append(out, l)
		}
	}
	return out
}

// ParallelIterations returns the product of the trip counts of the
// parallel loops: the number of GPU threads a one-thread-per-iteration
// mapping creates.
func (k *Kernel) ParallelIterations() int64 {
	n := int64(1)
	for _, l := range k.ParallelLoops() {
		n *= l.Trips()
	}
	return n
}

// SequentialIterations returns the product of the trip counts of the
// sequential loops: work per thread under the natural mapping.
func (k *Kernel) SequentialIterations() int64 {
	n := int64(1)
	for _, l := range k.SequentialLoops() {
		n *= l.Trips()
	}
	return n
}

// TotalIterations returns the total dynamic iteration count.
func (k *Kernel) TotalIterations() int64 {
	return k.ParallelIterations() * k.SequentialIterations()
}

// FlopsPerThread sums flop counts per GPU thread, accounting for each
// statement's execution depth.
func (k *Kernel) FlopsPerThread() int64 {
	var n int64
	for _, s := range k.Stmts {
		n += int64(s.Flops) * k.ExecsPerThread(s)
	}
	return n
}

// TotalFlops returns flops across the whole iteration space.
func (k *Kernel) TotalFlops() int64 {
	return k.ParallelIterations() * k.FlopsPerThread()
}

// Accesses returns all accesses of the body in order.
func (k *Kernel) Accesses() []Access {
	var out []Access
	for _, s := range k.Stmts {
		out = append(out, s.Accesses...)
	}
	return out
}

// LoadBytesPerThread returns bytes loaded per GPU thread, counting
// each access once per execution (no reuse analysis).
func (k *Kernel) LoadBytesPerThread() int64 {
	return k.accessBytesPerThread(Load)
}

// StoreBytesPerThread returns bytes stored per GPU thread.
func (k *Kernel) StoreBytesPerThread() int64 {
	return k.accessBytesPerThread(Store)
}

func (k *Kernel) accessBytesPerThread(kind AccessKind) int64 {
	var n int64
	for _, s := range k.Stmts {
		execs := k.ExecsPerThread(s)
		for _, ac := range s.Accesses {
			if ac.Kind == kind {
				n += ac.Array.Elem.Size() * execs
			}
		}
	}
	return n
}

// Loop returns the loop with the given variable, or false.
func (k *Kernel) Loop(v string) (Loop, bool) {
	for _, l := range k.Loops {
		if l.Var == v {
			return l, true
		}
	}
	return Loop{}, false
}

// ArithmeticIntensity returns flops per byte of global traffic under
// the no-reuse assumption — the quantity that decides memory- vs
// compute-bound on the roofline.
func (k *Kernel) ArithmeticIntensity() float64 {
	bytes := k.LoadBytesPerThread() + k.StoreBytesPerThread()
	if bytes == 0 {
		return 0
	}
	return float64(k.FlopsPerThread()) / float64(bytes)
}

// Sequence is an ordered list of kernels offloaded to the GPU as a
// unit, plus the arrays they touch. It is the scope of data usage
// analysis: data produced by an earlier kernel and consumed by a
// later one stays on the GPU.
type Sequence struct {
	Name    string
	Kernels []*Kernel
	// Iterations is how many times the kernel list repeats (the
	// paper's iterative applications re-invoke the same kernels; the
	// amount of data transferred is independent of the iteration
	// count, §IV-B).
	Iterations int
}

// Validate checks the sequence and each kernel.
func (s *Sequence) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("skeleton: sequence with empty name")
	}
	if len(s.Kernels) == 0 {
		return fmt.Errorf("skeleton: sequence %q has no kernels", s.Name)
	}
	if s.Iterations < 1 {
		return fmt.Errorf("skeleton: sequence %q has iteration count %d", s.Name, s.Iterations)
	}
	names := make(map[string]bool)
	for _, k := range s.Kernels {
		if k == nil {
			return fmt.Errorf("skeleton: sequence %q contains nil kernel", s.Name)
		}
		if err := k.Validate(); err != nil {
			return err
		}
		if names[k.Name] {
			return fmt.Errorf("skeleton: sequence %q has duplicate kernel name %q", s.Name, k.Name)
		}
		names[k.Name] = true
	}
	return nil
}

// Arrays returns the distinct arrays referenced by the sequence, in
// first-reference order.
func (s *Sequence) Arrays() []*Array {
	seen := make(map[*Array]bool)
	var out []*Array
	for _, k := range s.Kernels {
		for _, ac := range k.Accesses() {
			if !seen[ac.Array] {
				seen[ac.Array] = true
				out = append(out, ac.Array)
			}
		}
	}
	return out
}

// WithIterations returns a shallow copy of the sequence with a
// different iteration count — used by the iteration-sweep experiments
// (Figs 8, 10, 12).
func (s *Sequence) WithIterations(n int) *Sequence {
	c := *s
	c.Iterations = n
	return &c
}
