package skeleton

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestElemTypeSize(t *testing.T) {
	cases := map[ElemType]int64{
		Float32: 4, Int32: 4,
		Float64: 8, Int64: 8, Complex64: 8,
		Complex128: 16,
	}
	for ty, want := range cases {
		if got := ty.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", ty, got, want)
		}
	}
}

func TestElemTypeSizePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown ElemType.Size did not panic")
		}
	}()
	ElemType(99).Size()
}

func TestElemTypeStringAndValid(t *testing.T) {
	if Float32.String() != "float32" || Complex128.String() != "complex128" {
		t.Error("ElemType strings wrong")
	}
	if !Int64.Valid() || ElemType(99).Valid() {
		t.Error("ElemType.Valid wrong")
	}
	if !strings.Contains(ElemType(99).String(), "99") {
		t.Error("fallback ElemType string wrong")
	}
}

func TestArrayBasics(t *testing.T) {
	a := NewArray("temp", Float32, 1024, 1024)
	if a.Count() != 1024*1024 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Bytes() != 4*1024*1024 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
	if a.RowStride(0) != 1024 || a.RowStride(1) != 1 {
		t.Errorf("RowStride = %d, %d", a.RowStride(0), a.RowStride(1))
	}
	if got := a.String(); got != "temp[1024][1024]float32" {
		t.Errorf("String = %q", got)
	}
}

func TestArrayValidate(t *testing.T) {
	bad := []*Array{
		{Name: "", Dims: []int64{4}, Elem: Float32},
		{Name: "a", Dims: nil, Elem: Float32},
		{Name: "a", Dims: []int64{0}, Elem: Float32},
		{Name: "a", Dims: []int64{4, -1}, Elem: Float32},
		{Name: "a", Dims: []int64{4}, Elem: ElemType(99)},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid array accepted: %+v", i, a)
		}
	}
}

func TestNewArrayPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray with zero dim did not panic")
		}
	}()
	NewArray("x", Float32, 0)
}

func TestRowStridePanicsOutOfRange(t *testing.T) {
	a := NewArray("a", Float32, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("RowStride(1) on 1-D array did not panic")
		}
	}()
	a.RowStride(1)
}

func TestIndexExprBuilders(t *testing.T) {
	if got := Idx("i").String(); got != "i" {
		t.Errorf("Idx = %q", got)
	}
	if got := IdxPlus("i", -1).String(); got != "i-1" {
		t.Errorf("IdxPlus = %q", got)
	}
	if got := IdxPlus("i", 2).String(); got != "i+2" {
		t.Errorf("IdxPlus = %q", got)
	}
	if got := IdxScaled("j", 2, 0).String(); got != "2*j" {
		t.Errorf("IdxScaled = %q", got)
	}
	if got := IdxConst(5).String(); got != "5" {
		t.Errorf("IdxConst = %q", got)
	}
	if got := IdxConst(0).String(); got != "0" {
		t.Errorf("IdxConst(0) = %q", got)
	}
	if got := IdxSum("i", 4, "j", 1, 0).String(); got != "4*i+j" {
		t.Errorf("IdxSum = %q", got)
	}
	if got := IdxIrregular().String(); got != "?" {
		t.Errorf("IdxIrregular = %q", got)
	}
}

func TestIndexExprUsesCoeffVars(t *testing.T) {
	e := IdxSum("i", 4, "j", 1, 7)
	if !e.Uses("i") || !e.Uses("j") || e.Uses("k") {
		t.Error("Uses wrong")
	}
	if e.Coeff("i") != 4 || e.Coeff("k") != 0 {
		t.Error("Coeff wrong")
	}
	vars := e.Vars()
	if len(vars) != 2 || vars[0] != "i" || vars[1] != "j" {
		t.Errorf("Vars = %v", vars)
	}
	// Zero coefficients are invisible.
	z := IndexExpr{Coeffs: map[string]int64{"i": 0}}
	if z.Uses("i") || len(z.Vars()) != 0 {
		t.Error("zero coefficient should be invisible")
	}
}

func TestAccessValidateAndString(t *testing.T) {
	a := NewArray("grid", Float32, 64, 64)
	ac := LoadOf(a, IdxPlus("i", 1), Idx("j"))
	if err := ac.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ac.String(); got != "load grid[i+1][j]" {
		t.Errorf("String = %q", got)
	}
	st := StoreOf(a, Idx("i"), Idx("j"))
	if st.Kind != Store {
		t.Error("StoreOf kind wrong")
	}
	bad := LoadOf(a, Idx("i"))
	if err := bad.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := (Access{}).Validate(); err == nil {
		t.Error("nil array accepted")
	}
}

func TestAccessIrregular(t *testing.T) {
	dense := NewArray("d", Float32, 8)
	sparse := &Array{Name: "s", Dims: []int64{8}, Elem: Float32, Sparse: true}
	if LoadOf(dense, Idx("i")).Irregular() {
		t.Error("dense affine access marked irregular")
	}
	if !LoadOf(dense, IdxIrregular()).Irregular() {
		t.Error("irregular index not detected")
	}
	if !LoadOf(sparse, Idx("i")).Irregular() {
		t.Error("sparse array access not marked irregular")
	}
}

func TestFlattenedCoeff(t *testing.T) {
	a := NewArray("m", Float32, 128, 256)
	// m[i][j]: coeff of j is 1 (coalesced), of i is 256.
	ac := LoadOf(a, Idx("i"), Idx("j"))
	if c, ok := ac.FlattenedCoeff("j"); !ok || c != 1 {
		t.Errorf("coeff j = %d, %v", c, ok)
	}
	if c, ok := ac.FlattenedCoeff("i"); !ok || c != 256 {
		t.Errorf("coeff i = %d, %v", c, ok)
	}
	// Transposed access m[j][i]: coeff of i is 1... no: index 0 is j.
	tr := LoadOf(a, Idx("j"), Idx("i"))
	if c, _ := tr.FlattenedCoeff("j"); c != 256 {
		t.Errorf("transposed coeff j = %d", c)
	}
	if _, ok := LoadOf(a, IdxIrregular(), Idx("j")).FlattenedCoeff("j"); ok {
		t.Error("irregular access should have no flattened coeff")
	}
}

func TestLoopTrips(t *testing.T) {
	if got := ParLoop("i", 100).Trips(); got != 100 {
		t.Errorf("Trips = %d", got)
	}
	l := Loop{Var: "i", Lower: 0, Upper: 10, Step: 3}
	if got := l.Trips(); got != 4 {
		t.Errorf("step-3 Trips = %d, want 4", got)
	}
	if got := (Loop{Var: "i", Lower: 5, Upper: 5, Step: 1}).Trips(); got != 0 {
		t.Errorf("empty loop Trips = %d", got)
	}
}

func TestLoopValidate(t *testing.T) {
	if err := ParLoop("i", 4).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Loop{
		{Var: "", Lower: 0, Upper: 4, Step: 1},
		{Var: "i", Lower: 0, Upper: 4, Step: 0},
		{Var: "i", Lower: 4, Upper: 0, Step: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid loop accepted", i)
		}
	}
}

// stencilKernel builds a small HotSpot-like 3x3 stencil kernel.
func stencilKernel(t *testing.T, n int64) (*Kernel, *Array, *Array) {
	t.Helper()
	in := NewArray("in", Float32, n, n)
	out := NewArray("out", Float32, n, n)
	k := &Kernel{
		Name:  "stencil",
		Loops: []Loop{ParLoop("i", n), ParLoop("j", n)},
		Stmts: []Statement{{
			Accesses: []Access{
				LoadOf(in, Idx("i"), Idx("j")),
				LoadOf(in, IdxPlus("i", -1), Idx("j")),
				LoadOf(in, IdxPlus("i", 1), Idx("j")),
				LoadOf(in, Idx("i"), IdxPlus("j", -1)),
				LoadOf(in, Idx("i"), IdxPlus("j", 1)),
				StoreOf(out, Idx("i"), Idx("j")),
			},
			Flops: 10,
		}},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	return k, in, out
}

func TestKernelAggregates(t *testing.T) {
	k, _, _ := stencilKernel(t, 64)
	if got := k.ParallelIterations(); got != 64*64 {
		t.Errorf("ParallelIterations = %d", got)
	}
	if got := k.SequentialIterations(); got != 1 {
		t.Errorf("SequentialIterations = %d", got)
	}
	if got := k.TotalIterations(); got != 64*64 {
		t.Errorf("TotalIterations = %d", got)
	}
	if got := k.FlopsPerThread(); got != 10 {
		t.Errorf("FlopsPerThread = %d", got)
	}
	if got := k.TotalFlops(); got != 10*64*64 {
		t.Errorf("TotalFlops = %d", got)
	}
	if got := k.LoadBytesPerThread(); got != 20 {
		t.Errorf("LoadBytes = %d", got)
	}
	if got := k.StoreBytesPerThread(); got != 4 {
		t.Errorf("StoreBytes = %d", got)
	}
	if got := k.ArithmeticIntensity(); got != 10.0/24.0 {
		t.Errorf("ArithmeticIntensity = %v", got)
	}
	if got := len(k.Accesses()); got != 6 {
		t.Errorf("Accesses = %d", got)
	}
	if _, ok := k.Loop("i"); !ok {
		t.Error("Loop(i) not found")
	}
	if _, ok := k.Loop("z"); ok {
		t.Error("Loop(z) found")
	}
}

func TestKernelWithSequentialLoop(t *testing.T) {
	a := NewArray("a", Float32, 100, 8)
	k := &Kernel{
		Name:  "reduce",
		Loops: []Loop{ParLoop("i", 100), SeqLoop("j", 8)},
		Stmts: []Statement{{
			Accesses: []Access{LoadOf(a, Idx("i"), Idx("j"))},
			Flops:    2,
		}},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.ParallelIterations() != 100 || k.SequentialIterations() != 8 {
		t.Error("iteration split wrong")
	}
	if len(k.ParallelLoops()) != 1 || len(k.SequentialLoops()) != 1 {
		t.Error("loop classification wrong")
	}
}

func TestKernelValidateRejects(t *testing.T) {
	a := NewArray("a", Float32, 4)
	good := func() *Kernel {
		return &Kernel{
			Name:  "k",
			Loops: []Loop{ParLoop("i", 4)},
			Stmts: []Statement{{Accesses: []Access{LoadOf(a, Idx("i"))}, Flops: 1}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatal(err)
	}

	k := good()
	k.Name = ""
	if k.Validate() == nil {
		t.Error("empty name accepted")
	}

	k = good()
	k.Loops = nil
	if k.Validate() == nil {
		t.Error("no loops accepted")
	}

	k = good()
	k.Stmts = nil
	if k.Validate() == nil {
		t.Error("no statements accepted")
	}

	k = good()
	k.Loops = []Loop{ParLoop("i", 4), ParLoop("i", 8)}
	if k.Validate() == nil {
		t.Error("duplicate loop var accepted")
	}

	k = good()
	k.Loops = []Loop{SeqLoop("s", 4), ParLoop("i", 4)}
	if k.Validate() == nil {
		t.Error("parallel inside sequential accepted")
	}

	k = good()
	k.Stmts[0].Accesses[0].Index = []IndexExpr{Idx("zz")}
	if k.Validate() == nil {
		t.Error("undeclared loop variable accepted")
	}

	k = good()
	k.Stmts[0].Flops = -1
	if k.Validate() == nil {
		t.Error("negative flops accepted")
	}
}

func TestSequence(t *testing.T) {
	k, in, out := stencilKernel(t, 64)
	s := &Sequence{Name: "hotspot", Kernels: []*Kernel{k}, Iterations: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	arrays := s.Arrays()
	if len(arrays) != 2 || arrays[0] != in || arrays[1] != out {
		t.Errorf("Arrays = %v", arrays)
	}
	s2 := s.WithIterations(50)
	if s2.Iterations != 50 || s.Iterations != 1 {
		t.Error("WithIterations wrong")
	}
	if s2.Name != s.Name || len(s2.Kernels) != 1 {
		t.Error("WithIterations lost fields")
	}
}

func TestSequenceValidateRejects(t *testing.T) {
	k, _, _ := stencilKernel(t, 8)
	cases := []*Sequence{
		{Name: "", Kernels: []*Kernel{k}, Iterations: 1},
		{Name: "s", Kernels: nil, Iterations: 1},
		{Name: "s", Kernels: []*Kernel{k}, Iterations: 0},
		{Name: "s", Kernels: []*Kernel{nil}, Iterations: 1},
		{Name: "s", Kernels: []*Kernel{k, k}, Iterations: 1}, // duplicate name
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid sequence accepted", i)
		}
	}
}

func TestQuickLoopTripsNonNegative(t *testing.T) {
	prop := func(lo, hi int32, step uint8) bool {
		l := Loop{Var: "i", Lower: int64(lo), Upper: int64(hi), Step: int64(step)}
		return l.Trips() >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickArrayBytesIsCountTimesElem(t *testing.T) {
	prop := func(d1, d2 uint8) bool {
		a := NewArray("a", Float64, int64(d1)+1, int64(d2)+1)
		return a.Bytes() == a.Count()*8 && a.Count() == (int64(d1)+1)*(int64(d2)+1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
