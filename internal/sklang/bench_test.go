package sklang

import (
	"os"
	"path/filepath"
	"testing"
)

func BenchmarkParseBlur(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("testdata", "blur.sk"))
	if err != nil {
		b.Fatal(err)
	}
	src := string(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatBlur(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("testdata", "blur.sk"))
	if err != nil {
		b.Fatal(err)
	}
	w, err := Parse(string(data))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Format(w); err != nil {
			b.Fatal(err)
		}
	}
}
