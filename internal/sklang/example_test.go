package sklang_test

import (
	"fmt"

	"grophecy/internal/sklang"
)

// Example parses a minimal skeleton file and reports its structure.
func Example() {
	w, err := sklang.Parse(`
workload "Saxpy" size "1M"
array x[1048576] float32
array y[1048576] float32
kernel saxpy {
    parfor i in 0..1048576 {
        stmt flops=2 {
            load x[i]
            load y[i]
            store y[i]
        }
    }
}
sequence { saxpy }
cpu elements=1048576 flops=2 bytes=12 vectorizable=true regions=1
`)
	if err != nil {
		panic(err)
	}
	k := w.Seq.Kernels[0]
	fmt.Printf("%s: %d threads, %d flops/thread\n", k.Name, k.ParallelIterations(), k.FlopsPerThread())
	// Output:
	// saxpy: 1048576 threads, 2 flops/thread
}

// ExampleParse_errors shows the positioned errors the parser reports.
func ExampleParse_errors() {
	_, err := sklang.Parse(`workload "W" size "s"
array a[4] float32
kernel k { parfor i in 0..4 { stmt flops=1 { load b[i] } } }`)
	fmt.Println(err)
	// Output:
	// 3:51: undeclared array "b"
}
