package sklang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input: the
// property is simply "never panic, always return either a workload or
// a positioned error". The seed corpus includes the shipped skeleton
// files plus syntax shards that reach every parser production.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"blur.sk", "spmm.sk", "pipeline.sk"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	seeds := []string{
		"",
		"#",
		`workload "W" size "s"`,
		"array a[1] float32",
		"temporary sparse array z[9] complex128",
		"kernel k { parfor i in 0..4 { stmt flops=1 { load a[i] } } }",
		"kernel k { for s in 0..4 step 2 { } }",
		"sequence iterations=3 { k }",
		"cpu elements=1 flops=0.5 vectorizable=true",
		"load a[2*i-1+j]",
		"load a[?]",
		"0..", "..", "\"", "a[", "stmt {", "}}}}",
		"array a[999999999999999999999] float32",
		"parfor parfor parfor",
		"phase { run k cpu_reads a cpu_writes b }",
		"phase iterations=2 { }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		w, err := Parse(src)
		if err != nil {
			return // positioned error: fine
		}
		// Anything accepted must be a valid workload that the writer
		// can round-trip.
		if err := w.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid workload: %v", err)
		}
		out, err := Format(w)
		if err != nil {
			t.Fatalf("accepted workload does not format: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, out)
		}
	})
}
