package sklang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates the lexical classes of the skeleton language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokAssign   // =
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokQuestion // ?
	tokDotDot   // ..
)

// String implements fmt.Stringer for diagnostics.
func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokAssign:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokQuestion:
		return "'?'"
	case tokDotDot:
		return "'..'"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// pos is a source position for error messages.
type pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexical unit.
type token struct {
	Kind tokenKind
	Text string // identifier name, literal text (unquoted for strings)
	Pos  pos
}

// Error is a positioned skeleton-language error.
type Error struct {
	Pos pos
	Msg string
}

// Error implements the error interface with a position prefix.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(p pos, format string, args ...interface{}) *Error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans skeleton source into tokens. '#' starts a comment to
// end of line; whitespace separates tokens.
type lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) pos() pos { return pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case r == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			return
		}
	}
}

// next returns the next token or a positioned error.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return token{Kind: tokEOF, Pos: start}, nil
	}
	r := l.peek()
	switch {
	case r == '{':
		l.advance()
		return token{Kind: tokLBrace, Pos: start}, nil
	case r == '}':
		l.advance()
		return token{Kind: tokRBrace, Pos: start}, nil
	case r == '[':
		l.advance()
		return token{Kind: tokLBracket, Pos: start}, nil
	case r == ']':
		l.advance()
		return token{Kind: tokRBracket, Pos: start}, nil
	case r == '=':
		l.advance()
		return token{Kind: tokAssign, Pos: start}, nil
	case r == '+':
		l.advance()
		return token{Kind: tokPlus, Pos: start}, nil
	case r == '-':
		l.advance()
		return token{Kind: tokMinus, Pos: start}, nil
	case r == '*':
		l.advance()
		return token{Kind: tokStar, Pos: start}, nil
	case r == '?':
		l.advance()
		return token{Kind: tokQuestion, Pos: start}, nil
	case r == '.':
		l.advance()
		if l.peek() != '.' {
			return token{}, errorf(start, "unexpected '.', expected '..'")
		}
		l.advance()
		return token{Kind: tokDotDot, Pos: start}, nil
	case r == '"':
		return l.lexString(start)
	case unicode.IsDigit(r):
		return l.lexNumber(start)
	case unicode.IsLetter(r) || r == '_':
		return l.lexIdent(start)
	default:
		return token{}, errorf(start, "unexpected character %q", r)
	}
}

func (l *lexer) lexString(start pos) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return token{}, errorf(start, "unterminated string")
		}
		r := l.advance()
		if r == '"' {
			return token{Kind: tokString, Text: b.String(), Pos: start}, nil
		}
		if r == '\n' {
			return token{}, errorf(start, "newline in string")
		}
		b.WriteRune(r)
	}
}

func (l *lexer) lexNumber(start pos) (token, error) {
	var b strings.Builder
	kind := tokInt
	for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	// A fraction part — but only when not followed by a second dot
	// (the range operator '..').
	if l.peek() == '.' && l.off+1 < len(l.src) && unicode.IsDigit(l.src[l.off+1]) {
		kind = tokFloat
		b.WriteRune(l.advance())
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
	}
	return token{Kind: kind, Text: b.String(), Pos: start}, nil
}

func (l *lexer) lexIdent(start pos) (token, error) {
	var b strings.Builder
	for l.off < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(l.advance())
		} else {
			break
		}
	}
	return token{Kind: tokIdent, Text: b.String(), Pos: start}, nil
}

// lexAll scans the whole source, for the parser's lookahead buffer.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == tokEOF {
			return toks, nil
		}
	}
}
