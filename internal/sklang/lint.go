package sklang

import (
	"fmt"

	"grophecy/internal/core"
	"grophecy/internal/datausage"
	"grophecy/internal/skeleton"
)

// Lint warnings: authoring mistakes the parser cannot reject (the
// file is valid) but that usually indicate the skeleton does not say
// what its author meant. skfmt surfaces them with -l.

// Warning is one lint finding.
type Warning struct {
	// Msg is the human-readable description.
	Msg string
}

// String implements fmt.Stringer.
func (w Warning) String() string { return w.Msg }

// Info is the declaration-level metadata Parse gathers, for tools
// that need more than the assembled workload.
type Info struct {
	// Arrays are all declared arrays, in declaration order —
	// including ones no kernel references.
	Arrays []*skeleton.Array
	// Kernels are all declared kernels, in declaration order —
	// including ones the sequence does not run.
	Kernels []*skeleton.Kernel
}

// ParseWithInfo is Parse, additionally returning the declaration
// metadata.
func ParseWithInfo(src string) (core.Workload, Info, error) {
	toks, err := lexAll(src)
	if err != nil {
		return core.Workload{}, Info{}, err
	}
	p := &parser{toks: toks}
	w, err := p.parseFile()
	if err != nil {
		return core.Workload{}, Info{}, err
	}
	info := Info{}
	for _, name := range p.arrayOrder {
		info.Arrays = append(info.Arrays, p.arrays[name])
	}
	for _, name := range p.kernelOrder {
		info.Kernels = append(info.Kernels, p.kernels[name])
	}
	return w, info, nil
}

// Lint parses the source and reports authoring warnings. A parse
// error is returned as an error, not a warning.
func Lint(src string) ([]Warning, error) {
	w, info, err := ParseWithInfo(src)
	if err != nil {
		return nil, err
	}
	var warns []Warning
	warnf := func(format string, args ...interface{}) {
		warns = append(warns, Warning{Msg: fmt.Sprintf(format, args...)})
	}

	// Unused declarations.
	used := make(map[*skeleton.Array]bool)
	for _, arr := range w.Seq.Arrays() {
		used[arr] = true
	}
	for _, arr := range info.Arrays {
		if !used[arr] {
			warnf("array %q is declared but never accessed", arr.Name)
		}
	}
	inSeq := make(map[*skeleton.Kernel]bool)
	for _, k := range w.Seq.Kernels {
		inSeq[k] = true
	}
	for _, k := range info.Kernels {
		if !inSeq[k] {
			warnf("kernel %q is declared but not in the sequence", k.Name)
		}
	}

	// Hint contradictions, via the actual analysis.
	plan, err := datausage.Analyze(w.Seq, w.Hints)
	if err != nil {
		return nil, err
	}
	for _, up := range plan.Uploads {
		if up.Array().Temporary {
			warnf("temporary array %q is read before any kernel writes it, forcing an upload — the temporary hint is probably wrong",
				up.Array().Name)
		}
	}

	// Sparse flags that change nothing.
	for _, arr := range info.Arrays {
		if !arr.Sparse || !used[arr] {
			continue
		}
		irregular := false
		for _, k := range w.Seq.Kernels {
			for _, ac := range k.Accesses() {
				if ac.Array == arr && ac.IrregularIndex() {
					irregular = true
				}
			}
		}
		if !irregular {
			// Not wrong — affine streams into sparse arrays are real
			// (CSR values) — but worth confirming the author meant
			// the conservative whole-array transfer.
			warnf("sparse array %q is only accessed with affine indices; the sparse flag forces a conservative whole-array transfer — confirm that is intended",
				arr.Name)
		}
	}

	// Work-free statements.
	for _, k := range w.Seq.Kernels {
		for i, st := range k.Stmts {
			if st.Flops == 0 && st.IntOps == 0 && st.Transcendentals == 0 {
				warnf("kernel %q statement %d has no arithmetic (flops/intops/transc all zero) — the computational intensity will be underestimated",
					k.Name, i)
			}
		}
	}

	// Thread-starved kernels: fewer parallel iterations than one
	// wave of the smallest sensible launch.
	for _, k := range w.Seq.Kernels {
		if k.ParallelIterations() < 1024 {
			warnf("kernel %q has only %d parallel iterations — a GPU launch cannot hide latency at this scale",
				k.Name, k.ParallelIterations())
		}
	}
	return warns, nil
}
