package sklang

import (
	"strings"
	"testing"
)

const lintBase = `
workload "W" size "s"
array a[65536] float32
array b[65536] float32
kernel k {
    parfor i in 0..65536 {
        stmt flops=2 {
            load a[i]
            store b[i]
        }
    }
}
sequence { k }
cpu elements=65536 flops=2 bytes=8 regions=1
`

func lintWarnings(t *testing.T, src string) []string {
	t.Helper()
	warns, err := Lint(src)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, w := range warns {
		msgs = append(msgs, w.Msg)
	}
	return msgs
}

func hasWarning(msgs []string, sub string) bool {
	for _, m := range msgs {
		if strings.Contains(m, sub) {
			return true
		}
	}
	return false
}

func TestLintCleanFile(t *testing.T) {
	if msgs := lintWarnings(t, lintBase); len(msgs) != 0 {
		t.Errorf("clean file warned: %v", msgs)
	}
}

func TestLintUnusedArray(t *testing.T) {
	src := strings.Replace(lintBase, `array b[65536] float32`,
		"array b[65536] float32\narray ghost[4] float32", 1)
	// ghost is declared but never accessed; b still used.
	src = strings.Replace(src, "store b[i]", "store b[i]", 1)
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, `array "ghost" is declared but never accessed`) {
		t.Errorf("unused array not flagged: %v", msgs)
	}
}

func TestLintUnsequencedKernel(t *testing.T) {
	src := strings.Replace(lintBase, "sequence { k }",
		`kernel orphan {
    parfor i in 0..65536 {
        stmt flops=1 { load a[i] }
    }
}
sequence { k }`, 1)
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, `kernel "orphan" is declared but not in the sequence`) {
		t.Errorf("orphan kernel not flagged: %v", msgs)
	}
}

func TestLintTemporaryThatUploads(t *testing.T) {
	src := strings.Replace(lintBase, "array a[65536] float32",
		"temporary array a[65536] float32", 1)
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, `temporary array "a" is read before any kernel writes it`) {
		t.Errorf("contradictory temporary not flagged: %v", msgs)
	}
}

func TestLintAffineSparse(t *testing.T) {
	src := strings.Replace(lintBase, "array a[65536] float32",
		"sparse array a[65536] float32", 1)
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, `sparse array "a" is only accessed with affine indices`) {
		t.Errorf("affine sparse not flagged: %v", msgs)
	}
}

func TestLintSparseWithIrregularAccessIsClean(t *testing.T) {
	src := strings.Replace(lintBase, "array a[65536] float32",
		"sparse array a[65536] float32", 1)
	src = strings.Replace(src, "load a[i]", "load a[?]", 1)
	msgs := lintWarnings(t, src)
	if hasWarning(msgs, "sparse array") {
		t.Errorf("legit sparse usage flagged: %v", msgs)
	}
}

func TestLintWorkFreeStatement(t *testing.T) {
	src := strings.Replace(lintBase, "stmt flops=2 {", "stmt {", 1)
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, "has no arithmetic") {
		t.Errorf("work-free statement not flagged: %v", msgs)
	}
}

func TestLintThreadStarvedKernel(t *testing.T) {
	src := strings.ReplaceAll(lintBase, "65536", "64")
	msgs := lintWarnings(t, src)
	if !hasWarning(msgs, "parallel iterations") {
		t.Errorf("tiny kernel not flagged: %v", msgs)
	}
}

func TestLintParseErrorPropagates(t *testing.T) {
	if _, err := Lint("bogus"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestParseWithInfo(t *testing.T) {
	_, info, err := ParseWithInfo(lintBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Arrays) != 2 || info.Arrays[0].Name != "a" || info.Arrays[1].Name != "b" {
		t.Errorf("arrays = %v", info.Arrays)
	}
	if len(info.Kernels) != 1 || info.Kernels[0].Name != "k" {
		t.Errorf("kernels = %v", info.Kernels)
	}
}
