package sklang

import (
	"fmt"
	"math"
	"strconv"

	"grophecy/internal/core"
	"grophecy/internal/cpumodel"
	"grophecy/internal/skeleton"
)

// parser is a recursive-descent parser over a pre-lexed token stream.
// It builds the core.Workload directly, using a symbol table of
// declared arrays and kernels; semantic errors (unknown array, wrong
// dimensionality, duplicate names) are reported with positions.
type parser struct {
	toks []token
	off  int

	workloadName string
	dataSize     string
	arrays       map[string]*skeleton.Array
	arrayOrder   []string
	kernels      map[string]*skeleton.Kernel
	kernelOrder  []string
	seq          *skeleton.Sequence
	phases       []parsedPhase
	cpu          *cpumodel.Workload
}

func (p *parser) cur() token { return p.toks[p.off] }

func (p *parser) advance() token {
	t := p.toks[p.off]
	if t.Kind != tokEOF {
		p.off++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.cur()
	if t.Kind != kind {
		return token{}, errorf(t.Pos, "expected %v, found %v %q", kind, t.Kind, t.Text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(word string) (token, error) {
	t := p.cur()
	if t.Kind != tokIdent || t.Text != word {
		return token{}, errorf(t.Pos, "expected %q, found %q", word, t.Text)
	}
	return p.advance(), nil
}

func (p *parser) atKeyword(word string) bool {
	t := p.cur()
	return t.Kind == tokIdent && t.Text == word
}

func (p *parser) parseInt() (int64, error) {
	t, err := p.expect(tokInt)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, errorf(t.Pos, "invalid integer %q", t.Text)
	}
	return v, nil
}

// parseFile parses the whole token stream into a single-sequence
// workload; files declaring phases get ErrNotWorkload.
func (p *parser) parseFile() (core.Workload, error) {
	if err := p.parseDecls(); err != nil {
		return core.Workload{}, err
	}
	if len(p.phases) > 0 {
		return core.Workload{}, ErrNotWorkload
	}
	return p.finish()
}

// workload "Name" size "label"
func (p *parser) parseWorkloadHeader() error {
	at := p.cur().Pos
	if _, err := p.expectKeyword("workload"); err != nil {
		return err
	}
	if p.workloadName != "" {
		return errorf(at, "duplicate workload declaration")
	}
	name, err := p.expect(tokString)
	if err != nil {
		return err
	}
	p.workloadName = name.Text
	if _, err := p.expectKeyword("size"); err != nil {
		return err
	}
	size, err := p.expect(tokString)
	if err != nil {
		return err
	}
	p.dataSize = size.Text
	return nil
}

// [temporary] [sparse] array name[d0][d1]... type
func (p *parser) parseArray() error {
	var temporary, sparse bool
	for {
		switch {
		case p.atKeyword("temporary"):
			p.advance()
			temporary = true
		case p.atKeyword("sparse"):
			p.advance()
			sparse = true
		default:
			goto modifiersDone
		}
	}
modifiersDone:
	if _, err := p.expectKeyword("array"); err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, dup := p.arrays[nameTok.Text]; dup {
		return errorf(nameTok.Pos, "array %q already declared", nameTok.Text)
	}
	var dims []int64
	for p.cur().Kind == tokLBracket {
		p.advance()
		d, err := p.parseInt()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return err
		}
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		return errorf(p.cur().Pos, "array %q needs at least one dimension", nameTok.Text)
	}
	elemTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	elem, ok := elemTypes[elemTok.Text]
	if !ok {
		return errorf(elemTok.Pos, "unknown element type %q", elemTok.Text)
	}
	arr := &skeleton.Array{
		Name: nameTok.Text, Dims: dims, Elem: elem,
		Sparse: sparse, Temporary: temporary,
	}
	if err := arr.Validate(); err != nil {
		return errorf(nameTok.Pos, "%v", err)
	}
	p.arrays[arr.Name] = arr
	p.arrayOrder = append(p.arrayOrder, arr.Name)
	return nil
}

var elemTypes = map[string]skeleton.ElemType{
	"float32":    skeleton.Float32,
	"float64":    skeleton.Float64,
	"int32":      skeleton.Int32,
	"int64":      skeleton.Int64,
	"complex64":  skeleton.Complex64,
	"complex128": skeleton.Complex128,
}

// kernel name { loop }
func (p *parser) parseKernel() error {
	if _, err := p.expectKeyword("kernel"); err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, dup := p.kernels[nameTok.Text]; dup {
		return errorf(nameTok.Pos, "kernel %q already declared", nameTok.Text)
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	k := &skeleton.Kernel{Name: nameTok.Text}
	loopVars := make(map[string]bool)
	if err := p.parseLoopBody(k, loopVars, 0); err != nil {
		return err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return err
	}
	if err := k.Validate(); err != nil {
		return errorf(nameTok.Pos, "%v", err)
	}
	p.kernels[k.Name] = k
	p.kernelOrder = append(p.kernelOrder, k.Name)
	return nil
}

// parseLoopBody parses the body of a loop (or kernel top level):
// statements and at most one nested loop, at the given nesting depth.
func (p *parser) parseLoopBody(k *skeleton.Kernel, loopVars map[string]bool, depth int) error {
	sawLoop := false
	for {
		switch {
		case p.atKeyword("parfor") || p.atKeyword("for"):
			if sawLoop {
				return errorf(p.cur().Pos,
					"a loop body may contain at most one nested loop (single loop nest per kernel)")
			}
			sawLoop = true
			if err := p.parseLoop(k, loopVars, depth); err != nil {
				return err
			}
		case p.atKeyword("stmt"):
			if depth == 0 {
				return errorf(p.cur().Pos, "statements must appear inside a loop")
			}
			if err := p.parseStmt(k, loopVars, depth); err != nil {
				return err
			}
		case p.cur().Kind == tokRBrace:
			return nil
		default:
			t := p.cur()
			return errorf(t.Pos, "expected 'parfor', 'for', 'stmt', or '}', found %q", t.Text)
		}
	}
}

// (parfor|for) v in lo..hi [step s] { body }
func (p *parser) parseLoop(k *skeleton.Kernel, loopVars map[string]bool, depth int) error {
	parallel := p.cur().Text == "parfor"
	loopTok := p.advance()
	varTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if loopVars[varTok.Text] {
		return errorf(varTok.Pos, "loop variable %q already in scope", varTok.Text)
	}
	if _, err := p.expectKeyword("in"); err != nil {
		return err
	}
	lo, err := p.parseInt()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokDotDot); err != nil {
		return err
	}
	hi, err := p.parseInt()
	if err != nil {
		return err
	}
	step := int64(1)
	if p.atKeyword("step") {
		p.advance()
		step, err = p.parseInt()
		if err != nil {
			return err
		}
	}
	loop := skeleton.Loop{Var: varTok.Text, Lower: lo, Upper: hi, Step: step, Parallel: parallel}
	if err := loop.Validate(); err != nil {
		return errorf(loopTok.Pos, "%v", err)
	}
	k.Loops = append(k.Loops, loop)
	loopVars[varTok.Text] = true

	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	if err := p.parseLoopBody(k, loopVars, depth+1); err != nil {
		return err
	}
	_, err = p.expect(tokRBrace)
	return err
}

// stmt [flops=N] [intops=N] [transc=N] { accesses }
func (p *parser) parseStmt(k *skeleton.Kernel, loopVars map[string]bool, depth int) error {
	stmtTok := p.advance() // 'stmt'
	st := skeleton.Statement{Depth: depth}
	for p.cur().Kind == tokIdent && p.toks[p.off+1].Kind == tokAssign {
		keyTok := p.advance()
		p.advance() // '='
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		switch keyTok.Text {
		case "flops":
			st.Flops = int(v)
		case "intops":
			st.IntOps = int(v)
		case "transc":
			st.Transcendentals = int(v)
		default:
			return errorf(keyTok.Pos, "unknown statement attribute %q", keyTok.Text)
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().Kind != tokRBrace {
		ac, err := p.parseAccess(loopVars)
		if err != nil {
			return err
		}
		st.Accesses = append(st.Accesses, ac)
	}
	p.advance() // '}'
	if len(st.Accesses) == 0 && st.Flops == 0 && st.IntOps == 0 && st.Transcendentals == 0 {
		return errorf(stmtTok.Pos, "empty statement")
	}
	k.Stmts = append(k.Stmts, st)
	return nil
}

// (load|store) array[idx][idx]...
func (p *parser) parseAccess(loopVars map[string]bool) (skeleton.Access, error) {
	t := p.cur()
	if !p.atKeyword("load") && !p.atKeyword("store") {
		return skeleton.Access{}, errorf(t.Pos, "expected 'load' or 'store', found %q", t.Text)
	}
	kind := skeleton.Load
	if t.Text == "store" {
		kind = skeleton.Store
	}
	p.advance()
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return skeleton.Access{}, err
	}
	arr, ok := p.arrays[nameTok.Text]
	if !ok {
		return skeleton.Access{}, errorf(nameTok.Pos, "undeclared array %q", nameTok.Text)
	}
	var idx []skeleton.IndexExpr
	for p.cur().Kind == tokLBracket {
		p.advance()
		e, err := p.parseIndexExpr(loopVars)
		if err != nil {
			return skeleton.Access{}, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return skeleton.Access{}, err
		}
		idx = append(idx, e)
	}
	if len(idx) != len(arr.Dims) {
		return skeleton.Access{}, errorf(nameTok.Pos,
			"array %q has %d dimensions, access has %d indices", arr.Name, len(arr.Dims), len(idx))
	}
	return skeleton.Access{Array: arr, Kind: kind, Index: idx}, nil
}

// index := '?' | term (('+'|'-') term)*
// term  := INT ['*' IDENT] | IDENT
func (p *parser) parseIndexExpr(loopVars map[string]bool) (skeleton.IndexExpr, error) {
	if p.cur().Kind == tokQuestion {
		p.advance()
		return skeleton.IdxIrregular(), nil
	}
	expr := skeleton.IndexExpr{Coeffs: make(map[string]int64)}
	sign := int64(1)
	if p.cur().Kind == tokMinus {
		p.advance()
		sign = -1
	}
	for {
		if err := p.parseIndexTerm(&expr, sign, loopVars); err != nil {
			return skeleton.IndexExpr{}, err
		}
		switch p.cur().Kind {
		case tokPlus:
			p.advance()
			sign = 1
		case tokMinus:
			p.advance()
			sign = -1
		default:
			return expr, nil
		}
	}
}

func (p *parser) parseIndexTerm(expr *skeleton.IndexExpr, sign int64, loopVars map[string]bool) error {
	t := p.cur()
	switch t.Kind {
	case tokInt:
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		if p.cur().Kind == tokStar {
			p.advance()
			varTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if !loopVars[varTok.Text] {
				return errorf(varTok.Pos, "unknown loop variable %q", varTok.Text)
			}
			expr.Coeffs[varTok.Text] += sign * v
			return nil
		}
		expr.Const += sign * v
		return nil
	case tokIdent:
		if !loopVars[t.Text] {
			return errorf(t.Pos, "unknown loop variable %q", t.Text)
		}
		p.advance()
		expr.Coeffs[t.Text] += sign
		return nil
	default:
		return errorf(t.Pos, "expected an index term, found %v", t.Kind)
	}
}

// sequence [iterations=N] { kernelName ... }
func (p *parser) parseSequence() error {
	at := p.cur().Pos
	p.advance() // 'sequence'
	if p.seq != nil {
		return errorf(at, "duplicate sequence declaration")
	}
	iterations := 1
	if p.atKeyword("iterations") {
		p.advance()
		if _, err := p.expect(tokAssign); err != nil {
			return err
		}
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		iterations = int(v)
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	var kernels []*skeleton.Kernel
	for p.cur().Kind != tokRBrace {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		k, ok := p.kernels[nameTok.Text]
		if !ok {
			return errorf(nameTok.Pos, "undeclared kernel %q", nameTok.Text)
		}
		kernels = append(kernels, k)
	}
	p.advance() // '}'
	p.seq = &skeleton.Sequence{Kernels: kernels, Iterations: iterations}
	return nil
}

// cpu key=value ...
func (p *parser) parseCPU() error {
	at := p.cur().Pos
	p.advance() // 'cpu'
	if p.cpu != nil {
		return errorf(at, "duplicate cpu declaration")
	}
	w := cpumodel.Workload{}
	for p.cur().Kind == tokIdent && p.toks[p.off+1].Kind == tokAssign {
		keyTok := p.advance()
		p.advance() // '='
		switch keyTok.Text {
		case "elements":
			v, err := p.parseInt()
			if err != nil {
				return err
			}
			w.Elements = v
		case "flops":
			v, err := p.parseNumber()
			if err != nil {
				return err
			}
			w.FlopsPerElem = v
		case "bytes":
			v, err := p.parseNumber()
			if err != nil {
				return err
			}
			w.BytesPerElem = v
		case "transc":
			v, err := p.parseNumber()
			if err != nil {
				return err
			}
			w.TranscendentalsPerElem = v
		case "irregular":
			v, err := p.parseNumber()
			if err != nil {
				return err
			}
			w.IrregularFraction = v
		case "regions":
			v, err := p.parseInt()
			if err != nil {
				return err
			}
			w.Regions = int(v)
		case "vectorizable":
			boolTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			switch boolTok.Text {
			case "true":
				w.Vectorizable = true
			case "false":
				w.Vectorizable = false
			default:
				return errorf(boolTok.Pos, "vectorizable wants true or false, found %q", boolTok.Text)
			}
		default:
			return errorf(keyTok.Pos, "unknown cpu attribute %q", keyTok.Text)
		}
	}
	p.cpu = &w
	return nil
}

// parseNumber accepts an int or float literal as float64.
func (p *parser) parseNumber() (float64, error) {
	t := p.cur()
	if t.Kind != tokInt && t.Kind != tokFloat {
		return 0, errorf(t.Pos, "expected a number, found %v", t.Kind)
	}
	p.advance()
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, errorf(t.Pos, "invalid number %q", t.Text)
	}
	return v, nil
}

// finish assembles and validates the workload.
func (p *parser) finish() (core.Workload, error) {
	end := p.cur().Pos
	if p.workloadName == "" {
		return core.Workload{}, errorf(end, "missing workload declaration")
	}
	if p.seq == nil {
		return core.Workload{}, errorf(end, "missing sequence declaration")
	}
	if p.cpu == nil {
		return core.Workload{}, errorf(end, "missing cpu declaration")
	}
	p.seq.Name = p.workloadName
	p.cpu.Name = p.workloadName + "-cpu"
	w := core.Workload{
		Name:     p.workloadName,
		DataSize: p.dataSize,
		Seq:      p.seq,
		CPU:      *p.cpu,
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, fmt.Errorf("sklang: %w", err)
	}
	return w, nil
}
