package sklang

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"grophecy/internal/cpumodel"
	"grophecy/internal/program"
	"grophecy/internal/skeleton"
)

// Multi-phase program support: instead of one `sequence`, a skeleton
// file may declare several `phase` blocks:
//
//	phase iterations=4 {
//	    run denoise
//	    run sharpen
//	    cpu_reads img        # inter-phase CPU code consumes img
//	    cpu_writes img       # ...and modifies it (invalidates the GPU copy)
//	}
//
// Phases execute in declaration order; internal/program plans their
// transfers with GPU-residency tracking. A file declares either one
// `sequence` (a single-region workload, Parse) or one-or-more `phase`
// blocks (a program, ParseProgram), never both.

// ErrNotProgram is returned by ParseProgram when the source is a
// single-sequence workload file (use Parse instead).
var ErrNotProgram = errors.New("sklang: file has no phase declarations")

// ErrNotWorkload is returned by Parse when the source declares phases
// (use ParseProgram instead).
var ErrNotWorkload = errors.New("sklang: file declares phases; use ParseProgram")

// ProgramWorkload couples a parsed multi-phase program with its
// whole-program CPU baseline.
type ProgramWorkload struct {
	Name     string
	DataSize string
	Prog     *program.Program
	CPU      cpumodel.Workload
}

// parsedPhase is the parser's raw phase record.
type parsedPhase struct {
	iterations int
	kernels    []string
	cpuReads   []string
	cpuWrites  []string
	at         pos
}

// parsePhase parses one phase block.
func (p *parser) parsePhase() error {
	at := p.cur().Pos
	p.advance() // 'phase'
	ph := parsedPhase{iterations: 1, at: at}
	if p.atKeyword("iterations") {
		p.advance()
		if _, err := p.expect(tokAssign); err != nil {
			return err
		}
		v, err := p.parseInt()
		if err != nil {
			return err
		}
		ph.iterations = int(v)
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().Kind != tokRBrace {
		t := p.cur()
		switch {
		case p.atKeyword("run"):
			p.advance()
			name, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			ph.kernels = append(ph.kernels, name.Text)
		case p.atKeyword("cpu_reads"):
			p.advance()
			name, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			ph.cpuReads = append(ph.cpuReads, name.Text)
		case p.atKeyword("cpu_writes"):
			p.advance()
			name, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			ph.cpuWrites = append(ph.cpuWrites, name.Text)
		default:
			return errorf(t.Pos, "expected 'run', 'cpu_reads', 'cpu_writes', or '}', found %q", t.Text)
		}
	}
	p.advance() // '}'
	if len(ph.kernels) == 0 {
		return errorf(at, "phase runs no kernels")
	}
	p.phases = append(p.phases, ph)
	return nil
}

// finishProgram assembles a ProgramWorkload from the parsed phases.
func (p *parser) finishProgram() (ProgramWorkload, error) {
	end := p.cur().Pos
	if p.workloadName == "" {
		return ProgramWorkload{}, errorf(end, "missing workload declaration")
	}
	if p.seq != nil {
		return ProgramWorkload{}, errorf(end, "a file declares either a sequence or phases, not both")
	}
	if p.cpu == nil {
		return ProgramWorkload{}, errorf(end, "missing cpu declaration")
	}

	prog := &program.Program{Name: p.workloadName}
	for i, ph := range p.phases {
		var kernels []*skeleton.Kernel
		for _, name := range ph.kernels {
			k, ok := p.kernels[name]
			if !ok {
				return ProgramWorkload{}, errorf(ph.at, "phase %d runs undeclared kernel %q", i+1, name)
			}
			kernels = append(kernels, k)
		}
		phase := program.Phase{
			Seq: &skeleton.Sequence{
				Name:       fmt.Sprintf("%s-phase%d", p.workloadName, i+1),
				Kernels:    kernels,
				Iterations: ph.iterations,
			},
		}
		var err error
		if phase.CPUReads, err = p.resolveArrays(ph.cpuReads, ph.at); err != nil {
			return ProgramWorkload{}, err
		}
		if phase.CPUWrites, err = p.resolveArrays(ph.cpuWrites, ph.at); err != nil {
			return ProgramWorkload{}, err
		}
		prog.Phases = append(prog.Phases, phase)
	}
	if err := prog.Validate(); err != nil {
		return ProgramWorkload{}, fmt.Errorf("sklang: %w", err)
	}

	cpu := *p.cpu
	cpu.Name = p.workloadName + "-cpu"
	if err := cpu.Validate(); err != nil {
		return ProgramWorkload{}, fmt.Errorf("sklang: %w", err)
	}
	return ProgramWorkload{
		Name:     p.workloadName,
		DataSize: p.dataSize,
		Prog:     prog,
		CPU:      cpu,
	}, nil
}

func (p *parser) resolveArrays(names []string, at pos) ([]*skeleton.Array, error) {
	var out []*skeleton.Array
	for _, name := range names {
		arr, ok := p.arrays[name]
		if !ok {
			return nil, errorf(at, "phase references undeclared array %q", name)
		}
		out = append(out, arr)
	}
	return out, nil
}

// ParseProgram parses skeleton source declaring phases. It returns
// ErrNotProgram for single-sequence files.
func ParseProgram(src string) (ProgramWorkload, error) {
	toks, err := lexAll(src)
	if err != nil {
		return ProgramWorkload{}, err
	}
	p := &parser{toks: toks}
	if err := p.parseDecls(); err != nil {
		return ProgramWorkload{}, err
	}
	if len(p.phases) == 0 {
		return ProgramWorkload{}, ErrNotProgram
	}
	return p.finishProgram()
}

// ParseProgramFile reads and parses a program skeleton file.
func ParseProgramFile(path string) (ProgramWorkload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ProgramWorkload{}, fmt.Errorf("sklang: %w", err)
	}
	pw, err := ParseProgram(string(data))
	if err != nil {
		if errors.Is(err, ErrNotProgram) {
			return ProgramWorkload{}, err
		}
		return ProgramWorkload{}, fmt.Errorf("%s:%w", path, err)
	}
	return pw, nil
}

// FormatProgram renders a ProgramWorkload as canonical skeleton
// source; the output round-trips through ParseProgram.
func FormatProgram(pw ProgramWorkload) (string, error) {
	if pw.Prog == nil {
		return "", fmt.Errorf("sklang: nil program")
	}
	if err := pw.Prog.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workload %q size %q\n\n", pw.Name, pw.DataSize)

	seen := make(map[*skeleton.Array]bool)
	var arrays []*skeleton.Array
	var kernels []*skeleton.Kernel
	kernelSeen := make(map[*skeleton.Kernel]bool)
	for _, ph := range pw.Prog.Phases {
		for _, arr := range ph.Seq.Arrays() {
			if !seen[arr] {
				seen[arr] = true
				arrays = append(arrays, arr)
			}
		}
		for _, k := range ph.Seq.Kernels {
			if !kernelSeen[k] {
				kernelSeen[k] = true
				kernels = append(kernels, k)
			}
		}
	}
	sort.Slice(arrays, func(i, j int) bool { return arrays[i].Name < arrays[j].Name })
	for _, arr := range arrays {
		if arr.Temporary {
			b.WriteString("temporary ")
		}
		if arr.Sparse {
			b.WriteString("sparse ")
		}
		fmt.Fprintf(&b, "array %s", arr.Name)
		for _, d := range arr.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		fmt.Fprintf(&b, " %s\n", arr.Elem)
	}
	b.WriteString("\n")
	for _, k := range kernels {
		if err := writeKernel(&b, k); err != nil {
			return "", err
		}
		b.WriteString("\n")
	}
	for _, ph := range pw.Prog.Phases {
		fmt.Fprintf(&b, "phase iterations=%d {\n", ph.Seq.Iterations)
		for _, k := range ph.Seq.Kernels {
			fmt.Fprintf(&b, "    run %s\n", k.Name)
		}
		for _, arr := range ph.CPUReads {
			fmt.Fprintf(&b, "    cpu_reads %s\n", arr.Name)
		}
		for _, arr := range ph.CPUWrites {
			fmt.Fprintf(&b, "    cpu_writes %s\n", arr.Name)
		}
		b.WriteString("}\n\n")
	}
	fmt.Fprintf(&b, "cpu elements=%d flops=%s bytes=%s transc=%s irregular=%s vectorizable=%v regions=%d\n",
		pw.CPU.Elements,
		formatNumber(pw.CPU.FlopsPerElem), formatNumber(pw.CPU.BytesPerElem),
		formatNumber(pw.CPU.TranscendentalsPerElem), formatNumber(pw.CPU.IrregularFraction),
		pw.CPU.Vectorizable, pw.CPU.Regions)
	return b.String(), nil
}

// parseDecls is the shared declaration loop of Parse and ParseProgram.
func (p *parser) parseDecls() error {
	p.arrays = make(map[string]*skeleton.Array)
	p.kernels = make(map[string]*skeleton.Kernel)
	for p.cur().Kind != tokEOF {
		t := p.cur()
		if t.Kind != tokIdent {
			return errorf(t.Pos, "expected a declaration, found %v", t.Kind)
		}
		var err error
		switch t.Text {
		case "workload":
			err = p.parseWorkloadHeader()
		case "array", "temporary", "sparse":
			err = p.parseArray()
		case "kernel":
			err = p.parseKernel()
		case "sequence":
			err = p.parseSequence()
		case "phase":
			err = p.parsePhase()
		case "cpu":
			err = p.parseCPU()
		default:
			err = errorf(t.Pos, "unknown declaration %q (want workload, array, kernel, sequence, phase, or cpu)", t.Text)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
