package sklang

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"grophecy/internal/program"
)

func parsePipeline(t *testing.T) ProgramWorkload {
	t.Helper()
	pw, err := ParseProgramFile(filepath.Join("testdata", "pipeline.sk"))
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

func TestParseProgramFile(t *testing.T) {
	pw := parsePipeline(t)
	if pw.Name != "MiniPipeline" || pw.DataSize != "1024 x 1024" {
		t.Errorf("header = %q %q", pw.Name, pw.DataSize)
	}
	if len(pw.Prog.Phases) != 2 {
		t.Fatalf("phases = %d", len(pw.Prog.Phases))
	}
	p1, p2 := pw.Prog.Phases[0], pw.Prog.Phases[1]
	if p1.Seq.Iterations != 4 || p2.Seq.Iterations != 1 {
		t.Errorf("iterations = %d, %d", p1.Seq.Iterations, p2.Seq.Iterations)
	}
	if len(p1.Seq.Kernels) != 1 || p1.Seq.Kernels[0].Name != "denoise" {
		t.Errorf("phase 1 kernels = %v", p1.Seq.Kernels)
	}
	if len(p1.CPUReads) != 1 || p1.CPUReads[0].Name != "img" {
		t.Errorf("phase 1 cpu_reads = %v", p1.CPUReads)
	}
	if len(p1.CPUWrites) != 0 {
		t.Errorf("phase 1 cpu_writes = %v", p1.CPUWrites)
	}
	if pw.CPU.Regions != 2 {
		t.Errorf("cpu = %+v", pw.CPU)
	}
}

func TestParsedProgramAnalyzes(t *testing.T) {
	pw := parsePipeline(t)
	plan, err := program.Analyze(pw.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 uploads img; CPU reads it back (download); CPU does not
	// write it, so phase 2 reuses the GPU copy.
	if len(plan.Phases[0].Uploads) != 1 || len(plan.Phases[0].Downloads) != 1 {
		t.Errorf("phase 1 plan = %+v", plan.Phases[0])
	}
	if len(plan.Phases[1].Uploads) != 0 {
		t.Errorf("phase 2 re-uploads: %v", plan.Phases[1].Uploads)
	}
	if len(plan.Phases[1].Downloads) != 1 { // out
		t.Errorf("phase 2 downloads = %v", plan.Phases[1].Downloads)
	}
}

func TestParseProgramErrNotProgram(t *testing.T) {
	if _, err := ParseProgram(lintBase); !errors.Is(err, ErrNotProgram) {
		t.Errorf("single-sequence file: err = %v, want ErrNotProgram", err)
	}
}

func TestParseRejectsPhaseFiles(t *testing.T) {
	src := `
workload "W" size "s"
array a[2048] float32
kernel k { parfor i in 0..2048 { stmt flops=1 { load a[i] store a[i] } } }
phase { run k }
cpu elements=2048 flops=1 bytes=8 regions=1
`
	if _, err := Parse(src); !errors.Is(err, ErrNotWorkload) {
		t.Errorf("Parse on phase file: err = %v, want ErrNotWorkload", err)
	}
	// And the same source parses as a program.
	if _, err := ParseProgram(src); err != nil {
		t.Errorf("ParseProgram failed: %v", err)
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{`workload "W" size "s"
phase { }
cpu elements=1 flops=1`, "runs no kernels"},
		{`workload "W" size "s"
phase { run nosuch }
cpu elements=1 flops=1`, "undeclared kernel"},
		{`workload "W" size "s"
array a[2048] float32
kernel k { parfor i in 0..2048 { stmt flops=1 { load a[i] store a[i] } } }
phase { run k cpu_reads ghost }
cpu elements=1 flops=1`, "undeclared array"},
		{`workload "W" size "s"
array a[2048] float32
kernel k { parfor i in 0..2048 { stmt flops=1 { load a[i] store a[i] } } }
sequence { k }
phase { run k }
cpu elements=1 flops=1`, "not both"},
		{`array a[2048] float32
kernel k { parfor i in 0..2048 { stmt flops=1 { load a[i] store a[i] } } }
phase { run k }
cpu elements=1 flops=1`, "missing workload"},
		{`workload "W" size "s"
array a[2048] float32
kernel k { parfor i in 0..2048 { stmt flops=1 { load a[i] store a[i] } } }
phase { run k }`, "missing cpu"},
		{`workload "W" size "s"
phase { bogus }
cpu elements=1 flops=1`, "expected 'run'"},
	}
	for _, c := range cases {
		_, err := ParseProgram(c.src)
		if err == nil {
			t.Errorf("accepted:\n%s", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("error %q does not mention %q", err.Error(), c.wantMsg)
		}
	}
}

func TestFormatProgramRoundTrip(t *testing.T) {
	pw := parsePipeline(t)
	src, err := FormatProgram(pw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	if len(back.Prog.Phases) != len(pw.Prog.Phases) {
		t.Fatal("phase count changed")
	}
	for i := range pw.Prog.Phases {
		a, b := pw.Prog.Phases[i], back.Prog.Phases[i]
		if a.Seq.Iterations != b.Seq.Iterations ||
			len(a.Seq.Kernels) != len(b.Seq.Kernels) ||
			len(a.CPUReads) != len(b.CPUReads) ||
			len(a.CPUWrites) != len(b.CPUWrites) {
			t.Errorf("phase %d shape changed", i)
		}
	}
	// Same transfer schedule.
	pa, err := program.Analyze(pw.Prog)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := program.Analyze(back.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if pa.UploadBytes() != pb.UploadBytes() || pa.DownloadBytes() != pb.DownloadBytes() {
		t.Error("transfer schedules diverge after round trip")
	}
	// FormatProgram is idempotent.
	twice, err := FormatProgram(back)
	if err != nil {
		t.Fatal(err)
	}
	if src != twice {
		t.Error("FormatProgram not idempotent")
	}
}

func TestFormatProgramRejectsNil(t *testing.T) {
	if _, err := FormatProgram(ProgramWorkload{}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestParseProgramFileMissing(t *testing.T) {
	if _, err := ParseProgramFile("testdata/nope.sk"); err == nil {
		t.Error("missing file accepted")
	}
}
