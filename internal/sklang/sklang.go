// Package sklang implements the skeleton description language: the
// textual format in which GROPHECY++ users author code skeletons
// (paper §II-C — "The input to GROPHECY is a simplified description
// of the corresponding CPU code, referred to as a code skeleton").
//
// A skeleton file declares one workload: its arrays, kernels (single
// loop nests with statements of accesses and instruction counts), the
// offloaded kernel sequence, and the CPU baseline description. The
// example below is a complete 5-point stencil:
//
//	# blur: a 5-point stencil over a 2048x2048 image
//	workload "Blur" size "2048 x 2048"
//
//	array in[2048][2048] float32
//	array out[2048][2048] float32
//
//	kernel blur5 {
//	    parfor i in 0..2048 {
//	        parfor j in 0..2048 {
//	            stmt flops=5 intops=12 {
//	                load in[i][j]
//	                load in[i-1][j]
//	                load in[i+1][j]
//	                load in[i][j-1]
//	                load in[i][j+1]
//	                store out[i][j]
//	            }
//	        }
//	    }
//	}
//
//	sequence iterations=1 { blur5 }
//
//	cpu elements=4194304 flops=5 bytes=8 vectorizable=true regions=1
//
// Language notes:
//
//   - '#' comments to end of line; whitespace is free-form.
//   - arrays take 'temporary' and/or 'sparse' modifiers before the
//     'array' keyword, matching the hints of paper §III-B.
//   - 'parfor' declares a data-parallel loop, 'for' a sequential one;
//     a kernel is a single loop nest (each body nests at most one
//     loop), and parallel loops must enclose sequential ones.
//   - statements may appear at any nesting level; a statement outside
//     the innermost loop executes once per iteration of the loops
//     that enclose it (register accumulators, prologue loads).
//   - index expressions are affine (i, i-1, 2*j+1, 16*i+j) or '?' for
//     data-dependent (irregular) indices.
package sklang

import (
	"fmt"
	"os"

	"grophecy/internal/core"
	"grophecy/internal/metrics"
)

// Parser instruments.
var (
	mParses = metrics.Default.MustCounter("sklang_parses_total",
		"skeleton sources parsed")
	mParseErrors = metrics.Default.MustCounter("sklang_parse_errors_total",
		"skeleton sources rejected by the lexer or parser")
	mKernelsParsed = metrics.Default.MustCounter("sklang_kernels_parsed_total",
		"kernels accepted across all parses")
)

// Parse parses skeleton source text into a workload. Errors carry
// line:column positions.
func Parse(src string) (core.Workload, error) {
	mParses.Inc()
	toks, err := lexAll(src)
	if err != nil {
		mParseErrors.Inc()
		return core.Workload{}, err
	}
	p := &parser{toks: toks}
	w, err := p.parseFile()
	if err != nil {
		mParseErrors.Inc()
		return core.Workload{}, err
	}
	if w.Seq != nil {
		mKernelsParsed.Add(int64(len(w.Seq.Kernels)))
	}
	return w, nil
}

// ParseFile reads and parses a skeleton file.
func ParseFile(path string) (core.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Workload{}, fmt.Errorf("sklang: %w", err)
	}
	w, err := Parse(string(data))
	if err != nil {
		return core.Workload{}, fmt.Errorf("%s:%w", path, err)
	}
	return w, nil
}
