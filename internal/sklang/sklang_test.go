package sklang

import (
	"path/filepath"
	"strings"
	"testing"

	"grophecy/internal/core"
	"grophecy/internal/datausage"
	"grophecy/internal/skeleton"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`workload "A B" size "x" # comment
array a[16] float32 2*i .. ? { } [ ] = + - 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []tokenKind{
		tokIdent, tokString, tokIdent, tokString,
		tokIdent, tokIdent, tokLBracket, tokInt, tokRBracket, tokIdent,
		tokInt, tokStar, tokIdent, tokDotDot, tokQuestion,
		tokLBrace, tokRBrace, tokLBracket, tokRBracket, tokAssign,
		tokPlus, tokMinus, tokFloat, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[1].Text != "A B" {
		t.Errorf("string text = %q", toks[1].Text)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (pos{1, 1}) || toks[1].Pos != (pos{2, 3}) {
		t.Errorf("positions = %v, %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"@",
		`"unterminated`,
		"\"newline\nin string\"",
		"a . b", // lone dot
	}
	for _, src := range cases {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) accepted", src)
		}
	}
}

func TestLexerRangeAfterInt(t *testing.T) {
	// "0..16" must lex as INT DOTDOT INT, not a float.
	toks, err := lexAll("0..16")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != tokInt || toks[1].Kind != tokDotDot || toks[2].Kind != tokInt {
		t.Errorf("tokens = %v", toks)
	}
}

func parseBlur(t *testing.T) core.Workload {
	t.Helper()
	w, err := ParseFile(filepath.Join("testdata", "blur.sk"))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParseBlurFile(t *testing.T) {
	w := parseBlur(t)
	if w.Name != "Blur" || w.DataSize != "2048 x 2048" {
		t.Errorf("header = %q %q", w.Name, w.DataSize)
	}
	if len(w.Seq.Kernels) != 1 || w.Seq.Iterations != 1 {
		t.Fatalf("sequence = %+v", w.Seq)
	}
	k := w.Seq.Kernels[0]
	if k.Name != "blur5" {
		t.Errorf("kernel name = %q", k.Name)
	}
	if len(k.Loops) != 2 || !k.Loops[0].Parallel || !k.Loops[1].Parallel {
		t.Errorf("loops = %+v", k.Loops)
	}
	if len(k.Stmts) != 1 || len(k.Stmts[0].Accesses) != 6 {
		t.Fatalf("stmts = %+v", k.Stmts)
	}
	if k.Stmts[0].Flops != 5 || k.Stmts[0].IntOps != 12 {
		t.Errorf("attrs = %+v", k.Stmts[0])
	}
	if w.CPU.Elements != 4194304 || !w.CPU.Vectorizable {
		t.Errorf("cpu = %+v", w.CPU)
	}
	// Halo access parsed correctly.
	halo := k.Stmts[0].Accesses[1]
	if halo.Index[0].Coeff("i") != 1 || halo.Index[0].Const != -1 {
		t.Errorf("halo index = %+v", halo.Index[0])
	}
}

func TestParsedBlurEvaluatesEndToEnd(t *testing.T) {
	w := parseBlur(t)
	p, err := core.NewProjector(core.NewMachine(5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasTotalGPU() <= 0 || rep.MeasuredSpeedup() <= 0 {
		t.Errorf("report = %+v", rep)
	}
	// One upload (in), one download (out), 16MB each.
	if rep.Plan.UploadBytes() != 4*2048*2048 || rep.Plan.DownloadBytes() != 4*2048*2048 {
		t.Errorf("plan = %+v", rep.Plan)
	}
}

func TestParseSpMMFileFullFeatures(t *testing.T) {
	w, err := ParseFile(filepath.Join("testdata", "spmm.sk"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Seq.Iterations != 4 {
		t.Errorf("iterations = %d", w.Seq.Iterations)
	}
	k := w.Seq.Kernels[0]
	if len(k.Loops) != 3 {
		t.Fatalf("loops = %+v", k.Loops)
	}
	if k.Loops[2].Parallel || k.Loops[2].Step != 2 || k.Loops[2].Upper != 14 {
		t.Errorf("seq loop = %+v", k.Loops[2])
	}
	if len(k.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(k.Stmts))
	}
	// First statement hoisted above the k loop: depth 2.
	if k.Stmts[0].Depth != 2 {
		t.Errorf("hoisted stmt depth = %d, want 2", k.Stmts[0].Depth)
	}
	if k.Stmts[1].Depth != 3 {
		t.Errorf("inner stmt depth = %d, want 3", k.Stmts[1].Depth)
	}
	if got := k.ExecsPerThread(k.Stmts[0]); got != 1 {
		t.Errorf("hoisted execs = %d", got)
	}
	if got := k.ExecsPerThread(k.Stmts[1]); got != 7 { // ceil(14/2)
		t.Errorf("inner execs = %d", got)
	}
	// Irregular and multi-term indices.
	inner := k.Stmts[1].Accesses
	if !inner[2].IrregularIndex() {
		t.Error("x[?][c] not irregular")
	}
	if inner[3].Index[1].Coeff("c") != 2 || inner[3].Index[1].Const != -1 {
		t.Errorf("2*c-1 parsed as %+v", inner[3].Index[1])
	}
	// Sparse arrays remain conservative for transfers.
	plan := datausage.MustAnalyze(w.Seq, w.Hints)
	for _, up := range plan.Uploads {
		if up.Array().Name == "vals" && !up.Section.Whole {
			t.Error("sparse vals not whole-array")
		}
	}
	// Temporary array is not downloaded.
	for _, down := range plan.Downloads {
		if down.Array().Name == "scratch" {
			t.Error("temporary scratch downloaded")
		}
	}
}

func TestParseMinimalInline(t *testing.T) {
	w, err := Parse(`
workload "W" size "s"
array a[64] float32
kernel k { parfor i in 0..64 { stmt flops=1 { load a[i] store a[i] } } }
sequence { k }
cpu elements=64 flops=1 bytes=8 regions=1
`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "W" || len(w.Seq.Kernels) != 1 {
		t.Errorf("workload = %+v", w)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{`workload "W"`, `expected "size"`},
		{`bogus`, "unknown declaration"},
		{`workload "W" size "s" workload "X" size "y"`, "duplicate workload"},
		{`array a float32`, "at least one dimension"},
		{`array a[4] nosuchtype`, "unknown element type"},
		{`array a[4] float32 array a[4] float32`, "already declared"},
		{`array a[4] float32
kernel k { parfor i in 0..4 { stmt flops=1 { load b[i] } } }`, `undeclared array "b"`},
		{`array a[4] float32
kernel k { parfor i in 0..4 { stmt flops=1 { load a[i][i] } } }`, "has 1 dimensions"},
		{`array a[4] float32
kernel k { parfor i in 0..4 { stmt flops=1 { load a[q] } } }`, "unknown loop variable"},
		{`array a[4] float32
kernel k { stmt flops=1 { load a[0] } }`, "statements must appear inside a loop"},
		{`array a[4][4] float32
kernel k { parfor i in 0..4 { parfor j in 0..4 { stmt flops=1 {load a[i][j]} } parfor z in 0..4 { stmt flops=1 {load a[z][z]} } } }`,
			"at most one nested loop"},
		{`kernel k { parfor i in 0..4 { for i in 0..2 { stmt flops=1 {} } } }`, "already in scope"},
		{`array a[4] float32
kernel k { parfor i in 0..4 { stmt nope=1 { load a[i] } } }`, "unknown statement attribute"},
		{`array a[4] float32
kernel k { parfor i in 0..4 { stmt { } } }`, "empty statement"},
		{`workload "W" size "s" sequence { nosuch }`, `undeclared kernel`},
		{`sequence { } sequence { }`, "duplicate sequence"},
		{`cpu elements=1 cpu elements=1`, "duplicate cpu"},
		{`cpu bogus=1`, "unknown cpu attribute"},
		{`cpu vectorizable=maybe`, "true or false"},
		{`workload "W" size "s"`, "missing sequence"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse accepted:\n%s", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("error %q does not mention %q", err.Error(), c.wantMsg)
		}
	}
}

func TestParseErrorPositionFormat(t *testing.T) {
	_, err := Parse("workload \"W\"\nbogus")
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "2:1") {
		t.Errorf("error %q lacks position 2:1", err.Error())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("testdata/nope.sk"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMissingPieces(t *testing.T) {
	base := `
workload "W" size "s"
array a[64] float32
kernel k { parfor i in 0..64 { stmt flops=1 { load a[i] store a[i] } } }
`
	if _, err := Parse(base + `cpu elements=64 flops=1 regions=1`); err == nil ||
		!strings.Contains(err.Error(), "missing sequence") {
		t.Errorf("missing sequence: %v", err)
	}
	if _, err := Parse(base + `sequence { k }`); err == nil ||
		!strings.Contains(err.Error(), "missing cpu") {
		t.Errorf("missing cpu: %v", err)
	}
	noName := `
array a[64] float32
kernel k { parfor i in 0..64 { stmt flops=1 { load a[i] store a[i] } } }
sequence { k }
cpu elements=64 flops=1 regions=1`
	if _, err := Parse(noName); err == nil ||
		!strings.Contains(err.Error(), "missing workload") {
		t.Errorf("missing workload: %v", err)
	}
}

func TestNegativeConstIndex(t *testing.T) {
	w, err := Parse(`
workload "W" size "s"
array a[64] float32
kernel k { parfor i in 0..64 { stmt flops=1 { load a[-1+i] store a[i] } } }
sequence { k }
cpu elements=64 flops=1 bytes=8 regions=1
`)
	if err != nil {
		t.Fatal(err)
	}
	e := w.Seq.Kernels[0].Stmts[0].Accesses[0].Index[0]
	if e.Const != -1 || e.Coeff("i") != 1 {
		t.Errorf("index = %+v", e)
	}
}

func TestRoundTripAgainstHandBuilt(t *testing.T) {
	// The parsed blur kernel must have the same analytical footprint
	// as the same kernel built via the Go API.
	w := parseBlur(t)
	parsed := w.Seq.Kernels[0]

	in := skeleton.NewArray("in", skeleton.Float32, 2048, 2048)
	out := skeleton.NewArray("out", skeleton.Float32, 2048, 2048)
	handmade := &skeleton.Kernel{
		Name:  "blur5",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", 2048), skeleton.ParLoop("j", 2048)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.IdxPlus("i", -1), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.IdxPlus("i", 1), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.IdxPlus("j", -1)),
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.IdxPlus("j", 1)),
				skeleton.StoreOf(out, skeleton.Idx("i"), skeleton.Idx("j")),
			},
			Flops:  5,
			IntOps: 12,
		}},
	}
	if parsed.ParallelIterations() != handmade.ParallelIterations() {
		t.Error("parallel iterations differ")
	}
	if parsed.FlopsPerThread() != handmade.FlopsPerThread() {
		t.Error("flops differ")
	}
	if parsed.LoadBytesPerThread() != handmade.LoadBytesPerThread() {
		t.Error("load bytes differ")
	}
	if parsed.ArithmeticIntensity() != handmade.ArithmeticIntensity() {
		t.Error("arithmetic intensity differs")
	}
}
