package sklang

import (
	"fmt"
	"sort"
	"strings"

	"grophecy/internal/core"
	"grophecy/internal/skeleton"
)

// Format renders a workload as skeleton-language source. The output
// parses back (Parse) to an equivalent workload — see the round-trip
// property tests — so Format is usable both as an export tool for the
// built-in benchmarks and as a canonical serialization.
//
// Canonical form: statements are emitted grouped by their execution
// depth, as prologues of the loop they belong to (the IR's
// Statement.Depth records how often a statement runs, not whether it
// sat before or after the nested loop, so Format normalizes to the
// prologue position). Format(Parse(Format(w))) == Format(w).
func Format(w core.Workload) (string, error) {
	if err := w.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workload %q size %q\n\n", w.Name, w.DataSize)

	// Declarations sorted by name: stable regardless of access order,
	// which keeps Format idempotent under its own statement
	// normalization.
	arrays := w.Seq.Arrays()
	sort.Slice(arrays, func(i, j int) bool { return arrays[i].Name < arrays[j].Name })
	for _, arr := range arrays {
		if arr.Temporary {
			b.WriteString("temporary ")
		}
		if arr.Sparse {
			b.WriteString("sparse ")
		}
		fmt.Fprintf(&b, "array %s", arr.Name)
		for _, d := range arr.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		fmt.Fprintf(&b, " %s\n", arr.Elem)
	}
	b.WriteString("\n")

	for _, k := range w.Seq.Kernels {
		if err := writeKernel(&b, k); err != nil {
			return "", err
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "sequence iterations=%d {", w.Seq.Iterations)
	for _, k := range w.Seq.Kernels {
		fmt.Fprintf(&b, " %s", k.Name)
	}
	b.WriteString(" }\n\n")

	fmt.Fprintf(&b, "cpu elements=%d flops=%s bytes=%s transc=%s irregular=%s vectorizable=%v regions=%d\n",
		w.CPU.Elements,
		formatNumber(w.CPU.FlopsPerElem), formatNumber(w.CPU.BytesPerElem),
		formatNumber(w.CPU.TranscendentalsPerElem), formatNumber(w.CPU.IrregularFraction),
		w.CPU.Vectorizable, w.CPU.Regions)
	return b.String(), nil
}

// formatNumber renders a non-negative float as the language's int or
// float literal (no exponent, no sign).
func formatNumber(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(fmt.Sprintf("%f", v), "0")
}

func writeKernel(b *strings.Builder, k *skeleton.Kernel) error {
	fmt.Fprintf(b, "kernel %s {\n", k.Name)

	// Group statements by their effective depth so each can be
	// emitted at the right nesting level.
	byDepth := make(map[int][]skeleton.Statement)
	for _, st := range k.Stmts {
		depth := st.Depth
		if depth == 0 {
			depth = len(k.Loops)
		}
		byDepth[depth] = append(byDepth[depth], st)
	}

	for level, loop := range k.Loops {
		indent := strings.Repeat("    ", level+1)
		word := "for"
		if loop.Parallel {
			word = "parfor"
		}
		fmt.Fprintf(b, "%s%s %s in %d..%d", indent, word, loop.Var, loop.Lower, loop.Upper)
		if loop.Step != 1 {
			fmt.Fprintf(b, " step %d", loop.Step)
		}
		b.WriteString(" {\n")
		for _, st := range byDepth[level+1] {
			if err := writeStmt(b, st, level+2); err != nil {
				return err
			}
		}
	}
	for level := len(k.Loops); level >= 1; level-- {
		b.WriteString(strings.Repeat("    ", level) + "}\n")
	}
	b.WriteString("}\n")
	return nil
}

func writeStmt(b *strings.Builder, st skeleton.Statement, indentLevel int) error {
	indent := strings.Repeat("    ", indentLevel)
	fmt.Fprintf(b, "%sstmt", indent)
	if st.Flops > 0 {
		fmt.Fprintf(b, " flops=%d", st.Flops)
	}
	if st.IntOps > 0 {
		fmt.Fprintf(b, " intops=%d", st.IntOps)
	}
	if st.Transcendentals > 0 {
		fmt.Fprintf(b, " transc=%d", st.Transcendentals)
	}
	b.WriteString(" {\n")
	for _, ac := range st.Accesses {
		fmt.Fprintf(b, "%s    %s %s", indent, ac.Kind, ac.Array.Name)
		for _, e := range ac.Index {
			idx, err := formatIndex(e)
			if err != nil {
				return err
			}
			fmt.Fprintf(b, "[%s]", idx)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(b, "%s}\n", indent)
	return nil
}

// formatIndex renders an affine index in language syntax.
func formatIndex(e skeleton.IndexExpr) (string, error) {
	if e.Irregular {
		return "?", nil
	}
	vars := e.Vars()
	sort.Strings(vars)
	var parts []string
	for _, v := range vars {
		c := e.Coeff(v)
		switch {
		case c == 1:
			parts = append(parts, "+"+v)
		case c == -1:
			parts = append(parts, "-"+v)
		case c > 0:
			parts = append(parts, fmt.Sprintf("+%d*%s", c, v))
		default:
			parts = append(parts, fmt.Sprintf("-%d*%s", -c, v))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		if e.Const >= 0 {
			parts = append(parts, fmt.Sprintf("+%d", e.Const))
		} else {
			parts = append(parts, fmt.Sprintf("-%d", -e.Const))
		}
	}
	out := strings.Join(parts, "")
	out = strings.TrimPrefix(out, "+")
	return out, nil
}
