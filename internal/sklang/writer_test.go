package sklang

import (
	"strings"
	"testing"

	"grophecy/internal/bench"
	"grophecy/internal/core"
	"grophecy/internal/datausage"
	"grophecy/internal/gpu"
	"grophecy/internal/skeleton"
	"grophecy/internal/transform"
)

func TestFormatRejectsInvalidWorkload(t *testing.T) {
	if _, err := Format(core.Workload{}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestFormatBlurRoundTrip(t *testing.T) {
	orig := parseBlur(t)
	src, err := Format(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
	}
	assertEquivalent(t, orig, back)
}

// TestFormatBuiltinsRoundTrip is the strongest writer test: every
// built-in benchmark serializes to text and parses back to a workload
// with identical analytical behaviour.
func TestFormatBuiltinsRoundTrip(t *testing.T) {
	arch := gpu.QuadroFX5600()
	for _, w := range bench.MustAll() {
		src, err := Format(w)
		if err != nil {
			t.Fatalf("%s %s: %v", w.Name, w.DataSize, err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%s %s: re-parse failed: %v\nsource:\n%s", w.Name, w.DataSize, err, src)
		}
		assertEquivalent(t, w, back)

		// Transfer plans must match exactly.
		origPlan := datausage.MustAnalyze(w.Seq, w.Hints)
		backPlan := datausage.MustAnalyze(back.Seq, back.Hints)
		if origPlan.UploadBytes() != backPlan.UploadBytes() ||
			origPlan.DownloadBytes() != backPlan.DownloadBytes() ||
			origPlan.TransferCount() != backPlan.TransferCount() {
			t.Errorf("%s %s: transfer plans differ: %v vs %v",
				w.Name, w.DataSize, origPlan, backPlan)
		}

		// The transformation explorer must reach the same best
		// variant on every kernel.
		for i := range w.Seq.Kernels {
			ov, op, err := transform.Best(w.Seq.Kernels[i], arch)
			if err != nil {
				t.Fatal(err)
			}
			bv, bp, err := transform.Best(back.Seq.Kernels[i], arch)
			if err != nil {
				t.Fatal(err)
			}
			if ov.Name != bv.Name || op.Time != bp.Time {
				t.Errorf("%s %s kernel %s: best variant %s (%v) vs %s (%v)",
					w.Name, w.DataSize, w.Seq.Kernels[i].Name,
					ov.Name, op.Time, bv.Name, bp.Time)
			}
		}
	}
}

func assertEquivalent(t *testing.T, a, b core.Workload) {
	t.Helper()
	if a.Name != b.Name || a.DataSize != b.DataSize {
		t.Errorf("header differs: %q/%q vs %q/%q", a.Name, a.DataSize, b.Name, b.DataSize)
	}
	if a.Seq.Iterations != b.Seq.Iterations || len(a.Seq.Kernels) != len(b.Seq.Kernels) {
		t.Fatalf("sequence shape differs")
	}
	for i := range a.Seq.Kernels {
		ka, kb := a.Seq.Kernels[i], b.Seq.Kernels[i]
		if ka.Name != kb.Name {
			t.Errorf("kernel %d name %q vs %q", i, ka.Name, kb.Name)
		}
		if ka.ParallelIterations() != kb.ParallelIterations() ||
			ka.SequentialIterations() != kb.SequentialIterations() {
			t.Errorf("kernel %s iteration space differs", ka.Name)
		}
		if ka.FlopsPerThread() != kb.FlopsPerThread() {
			t.Errorf("kernel %s flops differ: %d vs %d",
				ka.Name, ka.FlopsPerThread(), kb.FlopsPerThread())
		}
		if ka.LoadBytesPerThread() != kb.LoadBytesPerThread() ||
			ka.StoreBytesPerThread() != kb.StoreBytesPerThread() {
			t.Errorf("kernel %s traffic differs", ka.Name)
		}
	}
	if a.CPU.Elements != b.CPU.Elements || a.CPU.FlopsPerElem != b.CPU.FlopsPerElem ||
		a.CPU.BytesPerElem != b.CPU.BytesPerElem ||
		a.CPU.TranscendentalsPerElem != b.CPU.TranscendentalsPerElem ||
		a.CPU.IrregularFraction != b.CPU.IrregularFraction ||
		a.CPU.Vectorizable != b.CPU.Vectorizable || a.CPU.Regions != b.CPU.Regions {
		t.Errorf("cpu workload differs: %+v vs %+v", a.CPU, b.CPU)
	}
}

func TestFormatIndexForms(t *testing.T) {
	cases := []struct {
		e    skeleton.IndexExpr
		want string
	}{
		{skeleton.Idx("i"), "i"},
		{skeleton.IdxPlus("i", -1), "i-1"},
		{skeleton.IdxPlus("i", 2), "i+2"},
		{skeleton.IdxScaled("j", 2, 0), "2*j"},
		{skeleton.IdxScaled("j", -1, 0), "-j"},
		{skeleton.IdxConst(0), "0"},
		{skeleton.IdxConst(-3), "-3"},
		{skeleton.IdxSum("i", 16, "j", 1, 0), "16*i+j"},
		{skeleton.IdxIrregular(), "?"},
	}
	for _, c := range cases {
		got, err := formatIndex(c.e)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("formatIndex(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{0, "0"},
		{0.5, "0.5"},
		{2.25, "2.25"},
	}
	for _, c := range cases {
		if got := formatNumber(c.in); got != c.want {
			t.Errorf("formatNumber(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatOutputIsReadable(t *testing.T) {
	w, err := bench.HotSpot("512 x 512")
	if err != nil {
		t.Fatal(err)
	}
	src, err := Format(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`workload "HotSpot" size "512 x 512"`,
		"array temp[512][512] float32",
		"parfor i in 0..512",
		"load temp[i-1][j]",
		"sequence iterations=1 { hotspot_stencil }",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("formatted source missing %q:\n%s", want, src)
		}
	}
}

func TestFormatIdempotent(t *testing.T) {
	// Format normalizes hoisted statements to the prologue position;
	// a second Format/Parse cycle must be a fixed point.
	for _, w := range bench.MustAll() {
		once, err := Format(w)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(once)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Format(back)
		if err != nil {
			t.Fatal(err)
		}
		if once != twice {
			t.Errorf("%s %s: Format not idempotent", w.Name, w.DataSize)
		}
	}
}
