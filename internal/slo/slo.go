// Package slo tracks service-level objectives for the daemon:
// availability (non-5xx fraction) and latency (fraction of requests
// under a threshold) over sliding wall-clock windows, reported as
// burn rates.
//
// A burn rate is the ratio of the observed bad fraction to the
// objective's error budget: burn 1.0 means the service is spending
// its budget exactly as fast as the objective allows, burn 10 means
// ten times too fast. Multi-window burn rates are the standard paging
// signal (a short window catches fast burns, a long window slow
// ones); the tracker computes both from one ring of per-second
// buckets so Record stays O(1) and Snapshot O(ring).
//
// Like internal/telemetry — and unlike everything the projection
// pipeline computes — these are *wall-clock* quantities with no
// determinism obligations.
package slo

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"grophecy/internal/metrics"
)

// Objective is one service-level objective.
type Objective struct {
	// Name identifies the objective ("availability", "latency");
	// it must be a legal metric-name fragment.
	Name string
	// Target is the good-request fraction the objective promises,
	// in (0, 1) — e.g. 0.999 allows one bad request per thousand.
	Target float64
	// Latency, when non-zero, makes this a latency objective: a
	// request is good when it succeeded *and* finished within
	// Latency. Zero means a pure availability objective (success
	// alone decides).
	Latency time.Duration
}

// DefaultObjectives is the daemon's stock pair: 99.9% availability
// and 99% of requests under the given latency threshold.
func DefaultObjectives(latency time.Duration) []Objective {
	return []Objective{
		{Name: "availability", Target: 0.999},
		{Name: "latency", Target: 0.99, Latency: latency},
	}
}

// DefaultWindows is the standard short/long burn-rate window pair.
func DefaultWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, time.Hour}
}

// Config configures a Tracker.
type Config struct {
	// Objectives to track; required.
	Objectives []Objective
	// Windows are the sliding windows, ascending; nil means
	// DefaultWindows.
	Windows []time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Registry, when non-nil, receives slo_* burn-rate gauges
	// (slo_<objective>_burn_rate_<window>).
	Registry *metrics.Registry
}

// bucket is one second of request counts, per objective.
type bucket struct {
	sec   int64
	good  []int64
	total []int64
}

// Tracker records request outcomes and serves burn-rate snapshots.
// All methods are safe for concurrent use.
type Tracker struct {
	objectives []Objective
	windows    []time.Duration
	now        func() time.Time

	mu      sync.Mutex
	ring    []bucket
	gauges  [][]*metrics.Gauge // [objective][window]
	lastSec int64              // last second the gauges were refreshed
}

// New builds a tracker. The ring covers the longest window at
// one-second resolution.
func New(cfg Config) (*Tracker, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			return nil, fmt.Errorf("slo: objective with empty name")
		}
		if !(o.Target > 0 && o.Target < 1) {
			return nil, fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
		}
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	var longest time.Duration
	for _, w := range windows {
		if w < time.Second {
			return nil, fmt.Errorf("slo: window %v below one second", w)
		}
		if w > longest {
			longest = w
		}
	}
	t := &Tracker{
		objectives: append([]Objective(nil), cfg.Objectives...),
		windows:    append([]time.Duration(nil), windows...),
		now:        cfg.Now,
	}
	if t.now == nil {
		t.now = time.Now
	}
	// +1 so the partially filled current second never evicts the
	// oldest full one.
	t.ring = make([]bucket, int(longest/time.Second)+1)
	for i := range t.ring {
		t.ring[i] = bucket{
			sec:   -1,
			good:  make([]int64, len(t.objectives)),
			total: make([]int64, len(t.objectives)),
		}
	}
	if cfg.Registry != nil {
		t.gauges = make([][]*metrics.Gauge, len(t.objectives))
		for i, o := range t.objectives {
			t.gauges[i] = make([]*metrics.Gauge, len(t.windows))
			for j, w := range t.windows {
				name := fmt.Sprintf("slo_%s_burn_rate_%s", o.Name, WindowLabel(w))
				g, err := cfg.Registry.EnsureGauge(name,
					fmt.Sprintf("Burn rate of the %s SLO (target %g) over %s.", o.Name, o.Target, w))
				if err != nil {
					return nil, err
				}
				t.gauges[i][j] = g
			}
		}
	}
	return t, nil
}

// WindowLabel renders a window as a compact metric-name fragment:
// 5m0s -> "5m", 1h0m0s -> "1h".
func WindowLabel(d time.Duration) string {
	s := d.String()
	for {
		switch {
		case strings.HasSuffix(s, "h0m0s"):
			s = strings.TrimSuffix(s, "0m0s")
		case strings.HasSuffix(s, "m0s") && len(s) > 3:
			s = strings.TrimSuffix(s, "0s")
		default:
			return s
		}
	}
}

// Record counts one finished request. success should be false for
// server-side failures (5xx); latency is the request's wall duration.
func (t *Tracker) Record(latency time.Duration, success bool) {
	if t == nil {
		return
	}
	sec := t.now().Unix()
	t.mu.Lock()
	b := &t.ring[int(sec%int64(len(t.ring)))]
	if b.sec != sec {
		b.sec = sec
		for i := range b.good {
			b.good[i], b.total[i] = 0, 0
		}
	}
	for i, o := range t.objectives {
		b.total[i]++
		good := success
		if good && o.Latency > 0 && latency > o.Latency {
			good = false
		}
		if good {
			b.good[i]++
		}
	}
	refresh := t.gauges != nil && sec != t.lastSec
	if refresh {
		t.lastSec = sec
	}
	t.mu.Unlock()
	if refresh {
		t.Snapshot()
	}
}

// WindowStatus is one objective's state over one window.
type WindowStatus struct {
	Window time.Duration `json:"window"`
	Good   int64         `json:"good"`
	Total  int64         `json:"total"`
	// ErrorRate is bad/total (0 with no traffic).
	ErrorRate float64 `json:"errorRate"`
	// BurnRate is ErrorRate divided by the objective's error budget
	// (1 - target); above 1.0 the budget is burning too fast.
	BurnRate float64 `json:"burnRate"`
}

// Status is one objective's state over every window.
type Status struct {
	Objective Objective      `json:"objective"`
	Windows   []WindowStatus `json:"windows"`
}

// Snapshot computes every objective × window burn rate and, when a
// registry was configured, refreshes the slo_* gauges.
func (t *Tracker) Snapshot() []Status {
	if t == nil {
		return nil
	}
	now := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()

	out := make([]Status, len(t.objectives))
	for i, o := range t.objectives {
		out[i] = Status{Objective: o, Windows: make([]WindowStatus, len(t.windows))}
		for j, w := range t.windows {
			out[i].Windows[j].Window = w
		}
	}
	for _, b := range t.ring {
		if b.sec < 0 {
			continue
		}
		age := now - b.sec
		if age < 0 {
			continue
		}
		for j, w := range t.windows {
			if age >= int64(w/time.Second) {
				continue
			}
			for i := range t.objectives {
				out[i].Windows[j].Good += b.good[i]
				out[i].Windows[j].Total += b.total[i]
			}
		}
	}
	for i, o := range t.objectives {
		budget := 1 - o.Target
		for j := range out[i].Windows {
			ws := &out[i].Windows[j]
			if ws.Total > 0 {
				ws.ErrorRate = float64(ws.Total-ws.Good) / float64(ws.Total)
				ws.BurnRate = ws.ErrorRate / budget
			}
			if t.gauges != nil {
				t.gauges[i][j].Set(ws.BurnRate)
			}
		}
	}
	return out
}
