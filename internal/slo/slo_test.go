package slo

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"grophecy/internal/metrics"
)

// clock is a settable test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1700000000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTracker(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]Config{
		"no objectives": {},
		"empty name":    {Objectives: []Objective{{Target: 0.9}}},
		"target 0":      {Objectives: []Objective{{Name: "a", Target: 0}}},
		"target 1":      {Objectives: []Objective{{Name: "a", Target: 1}}},
		"tiny window":   {Objectives: []Objective{{Name: "a", Target: 0.9}}, Windows: []time.Duration{time.Millisecond}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestBurnRates(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99}},
		Windows:    []time.Duration{time.Minute},
		Now:        ck.now,
	})
	// 100 requests, 2 failures: error rate 2%, budget 1% -> burn 2.0.
	for i := 0; i < 100; i++ {
		tr.Record(10*time.Millisecond, i >= 2)
		ck.advance(100 * time.Millisecond)
	}
	st := tr.Snapshot()
	if len(st) != 1 || len(st[0].Windows) != 1 {
		t.Fatalf("snapshot shape: %+v", st)
	}
	w := st[0].Windows[0]
	if w.Total != 100 || w.Good != 98 {
		t.Fatalf("good/total = %d/%d, want 98/100", w.Good, w.Total)
	}
	if w.ErrorRate != 0.02 {
		t.Fatalf("error rate = %v, want 0.02", w.ErrorRate)
	}
	if w.BurnRate < 1.99 || w.BurnRate > 2.01 {
		t.Fatalf("burn rate = %v, want 2.0", w.BurnRate)
	}
}

func TestLatencyObjective(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "latency", Target: 0.9, Latency: 100 * time.Millisecond}},
		Windows:    []time.Duration{time.Minute},
		Now:        ck.now,
	})
	tr.Record(50*time.Millisecond, true)  // good
	tr.Record(500*time.Millisecond, true) // too slow -> bad
	tr.Record(50*time.Millisecond, false) // failed -> bad
	w := tr.Snapshot()[0].Windows[0]
	if w.Total != 3 || w.Good != 1 {
		t.Fatalf("good/total = %d/%d, want 1/3", w.Good, w.Total)
	}
}

func TestWindowsSlideAndExpire(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99}},
		Windows:    []time.Duration{10 * time.Second, time.Minute},
		Now:        ck.now,
	})
	tr.Record(time.Millisecond, false)
	ck.advance(30 * time.Second)
	tr.Record(time.Millisecond, true)

	st := tr.Snapshot()
	short, long := st[0].Windows[0], st[0].Windows[1]
	// The failure is 30s old: outside the 10s window, inside 1m.
	if short.Total != 1 || short.Good != 1 {
		t.Fatalf("short window good/total = %d/%d, want 1/1", short.Good, short.Total)
	}
	if long.Total != 2 || long.Good != 1 {
		t.Fatalf("long window good/total = %d/%d, want 1/2", long.Good, long.Total)
	}

	// Past the long window everything expires; no traffic means burn 0.
	ck.advance(2 * time.Minute)
	w := tr.Snapshot()[0].Windows[1]
	if w.Total != 0 || w.BurnRate != 0 {
		t.Fatalf("expired window = %+v", w)
	}
}

func TestRingReusesOldSeconds(t *testing.T) {
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99}},
		Windows:    []time.Duration{5 * time.Second},
		Now:        ck.now,
	})
	// Wrap the 6-bucket ring several times; at snapshot time the clock
	// sits one second past the last record, so exactly 4 of the
	// one-per-second requests are younger than the 5s window.
	for i := 0; i < 30; i++ {
		tr.Record(time.Millisecond, true)
		ck.advance(time.Second)
	}
	w := tr.Snapshot()[0].Windows[0]
	if w.Total != 4 {
		t.Fatalf("total = %d, want 4 after ring wrap", w.Total)
	}
}

func TestGaugesExported(t *testing.T) {
	reg := metrics.NewRegistry()
	ck := newClock()
	tr := newTracker(t, Config{
		Objectives: DefaultObjectives(250 * time.Millisecond),
		Now:        ck.now,
		Registry:   reg,
	})
	tr.Record(time.Millisecond, false)
	ck.advance(time.Second)
	tr.Record(time.Millisecond, false) // second tick refreshes gauges
	tr.Snapshot()

	dump := reg.Dump()
	for _, want := range []string{
		"slo_availability_burn_rate_5m",
		"slo_availability_burn_rate_1h",
		"slo_latency_burn_rate_5m",
		"slo_latency_burn_rate_1h",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %s:\n%s", want, dump)
		}
	}
	// All requests failed: availability burn = 1/0.001 = ~1000
	// (modulo float representation of the error budget).
	var burn float64
	for _, line := range strings.Split(dump, "\n") {
		if v, ok := strings.CutPrefix(line, "slo_availability_burn_rate_5m "); ok {
			if _, err := fmt.Sscanf(v, "%g", &burn); err != nil {
				t.Fatalf("unparseable gauge value %q", v)
			}
		}
	}
	if burn < 999 || burn > 1001 {
		t.Errorf("availability burn = %v, want ~1000:\n%s", burn, dump)
	}
}

func TestWindowLabel(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		90 * time.Second: "1m30s",
		30 * time.Second: "30s",
		6 * time.Hour:    "6h",
	}
	for d, want := range cases {
		if got := WindowLabel(d); got != want {
			t.Errorf("WindowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Record(time.Second, true)
	if st := tr.Snapshot(); st != nil {
		t.Fatalf("nil tracker snapshot = %v", st)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := newTracker(t, Config{Objectives: DefaultObjectives(time.Second)})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Record(time.Duration(j)*time.Millisecond, j%10 != 0)
			}
		}()
	}
	wg.Wait()
	w := tr.Snapshot()[0].Windows[0]
	if w.Total != 1600 {
		t.Fatalf("total = %d, want 1600", w.Total)
	}
}
