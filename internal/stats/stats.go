// Package stats provides the small statistical toolkit used throughout
// the GROPHECY++ evaluation: means, error magnitudes, linear
// regression, and run summaries.
//
// The paper's headline metric is the "error magnitude": the absolute
// value of the percent difference between a predicted and a measured
// value (§V-A). ErrorMagnitude implements exactly that definition and
// is used by every experiment in internal/experiments.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrMismatchedLengths is returned by functions that require paired
// samples of equal length.
var ErrMismatchedLengths = errors.New("stats: mismatched sample lengths")

// ErrEmpty is returned when an aggregate is requested over no samples.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice; callers that must distinguish use MeanChecked.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanChecked is Mean with an explicit error for the empty case.
func MeanChecked(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Mean(xs), nil
}

// GeoMean returns the geometric mean of xs. All values must be
// positive; non-positive values yield NaN, mirroring math.Log.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the two middle elements
// for even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ErrorMagnitude returns the paper's accuracy metric: the absolute
// value of the percent difference between predicted and measured,
// expressed as a fraction (0.08 == 8%). A measured value of zero with
// a nonzero prediction yields +Inf; zero/zero yields 0.
func ErrorMagnitude(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / math.Abs(measured)
}

// MeanErrorMagnitude returns the arithmetic mean error magnitude over
// paired predicted/measured samples, as used for the overall model
// validation in §V-A.
func MeanErrorMagnitude(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, ErrMismatchedLengths
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range predicted {
		sum += ErrorMagnitude(predicted[i], measured[i])
	}
	return sum / float64(len(predicted)), nil
}

// MaxErrorMagnitude returns the largest error magnitude over paired
// samples (the "maximum error" reported for Fig 4).
func MaxErrorMagnitude(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, ErrMismatchedLengths
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	worst := 0.0
	for i := range predicted {
		if e := ErrorMagnitude(predicted[i], measured[i]); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// LinearFit holds the result of an ordinary least squares fit
// y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine performs ordinary least squares over paired samples. It is
// the "full regression" ablation against the paper's two-point
// calibration (DESIGN.md §5). At least two points with distinct x are
// required.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrMismatchedLengths
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit, all x equal")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R^2 = 1 - SS_res/SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// Summary aggregates a set of repeated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// CV returns the coefficient of variation (stddev/mean), a unitless
// noise measure; 0 if the mean is 0.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}
