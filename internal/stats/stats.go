// Package stats provides the small statistical toolkit used throughout
// the GROPHECY++ evaluation: means, error magnitudes, linear
// regression, and run summaries.
//
// The paper's headline metric is the "error magnitude": the absolute
// value of the percent difference between a predicted and a measured
// value (§V-A). ErrorMagnitude implements exactly that definition and
// is used by every experiment in internal/experiments.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrMismatchedLengths is returned by functions that require paired
// samples of equal length.
var ErrMismatchedLengths = errors.New("stats: mismatched sample lengths")

// ErrEmpty is returned when an aggregate is requested over no samples.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice; callers that must distinguish use MeanChecked.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanChecked is Mean with an explicit error for the empty case.
func MeanChecked(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Mean(xs), nil
}

// GeoMean returns the geometric mean of xs. All values must be
// positive; non-positive values yield NaN, mirroring math.Log.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the two middle elements
// for even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ErrorMagnitude returns the paper's accuracy metric: the absolute
// value of the percent difference between predicted and measured,
// expressed as a fraction (0.08 == 8%). A measured value of zero with
// a nonzero prediction yields +Inf; zero/zero yields 0.
func ErrorMagnitude(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / math.Abs(measured)
}

// MeanErrorMagnitude returns the arithmetic mean error magnitude over
// paired predicted/measured samples, as used for the overall model
// validation in §V-A.
func MeanErrorMagnitude(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, ErrMismatchedLengths
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range predicted {
		sum += ErrorMagnitude(predicted[i], measured[i])
	}
	return sum / float64(len(predicted)), nil
}

// MaxErrorMagnitude returns the largest error magnitude over paired
// samples (the "maximum error" reported for Fig 4).
func MaxErrorMagnitude(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, ErrMismatchedLengths
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	worst := 0.0
	for i := range predicted {
		if e := ErrorMagnitude(predicted[i], measured[i]); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// LinearFit holds the result of an ordinary least squares fit
// y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine performs ordinary least squares over paired samples. It is
// the "full regression" ablation against the paper's two-point
// calibration (DESIGN.md §5). At least two points with distinct x are
// required.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrMismatchedLengths
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate fit, all x equal")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R^2 = 1 - SS_res/SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// FitMulti solves the ordinary least squares problem y ≈ X·coef for
// an arbitrary feature count: X is one row of feature values per
// observation, and the returned coefficient vector minimizes the sum
// of squared residuals. The solve goes through the normal equations
// (XᵀX)·coef = Xᵀy with Gaussian elimination and partial pivoting —
// the feature counts here are tiny (hardware-fitted prediction
// backends use three), so numerical heroics are unnecessary, but a
// rank-deficient system is still reported as an error rather than
// silently returning garbage.
func FitMulti(rows [][]float64, ys []float64) ([]float64, error) {
	if len(rows) != len(ys) {
		return nil, ErrMismatchedLengths
	}
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	k := len(rows[0])
	if k == 0 {
		return nil, errors.New("stats: FitMulti with zero features")
	}
	if len(rows) < k {
		return nil, errors.New("stats: FitMulti underdetermined, fewer observations than features")
	}
	// Accumulate the normal equations as an augmented [k x k+1] matrix.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k+1)
	}
	for n, row := range rows {
		if len(row) != k {
			return nil, ErrMismatchedLengths
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][k] += row[i] * ys[n]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-30 {
			return nil, errors.New("stats: degenerate fit, features are linearly dependent")
		}
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	coef := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		sum := a[i][k]
		for j := i + 1; j < k; j++ {
			sum -= a[i][j] * coef[j]
		}
		coef[i] = sum / a[i][i]
	}
	return coef, nil
}

// Summary aggregates a set of repeated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// CV returns the coefficient of variation (stddev/mean), a unitless
// noise measure; 0 if the mean is 0.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}
