package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanChecked(t *testing.T) {
	if _, err := MeanChecked(nil); err != ErrEmpty {
		t.Errorf("MeanChecked(nil) err = %v, want ErrEmpty", err)
	}
	got, err := MeanChecked([]float64{2, 4})
	if err != nil || got != 3 {
		t.Errorf("MeanChecked([2 4]) = %v, %v", got, err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{8}); !almost(got, 8, 1e-12) {
		t.Errorf("GeoMean(8) = %v, want 8", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev(constant) = %v, want 0", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almost(got, 1, 1e-12) {
		t.Errorf("StdDev(1,3) = %v, want 1", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty should be +Inf/-Inf")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty Median = %v, want 0", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestErrorMagnitude(t *testing.T) {
	cases := []struct {
		pred, meas, want float64
	}{
		{110, 100, 0.10},
		{90, 100, 0.10},
		{100, 100, 0},
		{-50, 100, 1.5},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := ErrorMagnitude(c.pred, c.meas); !almost(got, c.want, 1e-12) {
			t.Errorf("ErrorMagnitude(%v,%v) = %v, want %v", c.pred, c.meas, got, c.want)
		}
	}
	if got := ErrorMagnitude(1, 0); !math.IsInf(got, 1) {
		t.Errorf("ErrorMagnitude(1,0) = %v, want +Inf", got)
	}
}

func TestMeanErrorMagnitude(t *testing.T) {
	pred := []float64{110, 90}
	meas := []float64{100, 100}
	got, err := MeanErrorMagnitude(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.10, 1e-12) {
		t.Errorf("MeanErrorMagnitude = %v, want 0.10", got)
	}
	if _, err := MeanErrorMagnitude(pred, meas[:1]); err != ErrMismatchedLengths {
		t.Errorf("mismatched lengths err = %v", err)
	}
	if _, err := MeanErrorMagnitude(nil, nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

func TestMaxErrorMagnitude(t *testing.T) {
	pred := []float64{101, 120, 95}
	meas := []float64{100, 100, 100}
	got, err := MaxErrorMagnitude(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.20, 1e-12) {
		t.Errorf("MaxErrorMagnitude = %v, want 0.20", got)
	}
}

func TestFitLineExact(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Intercept, 3, 1e-9) || !almost(fit.Slope, 2, 1e-9) {
		t.Errorf("fit = %+v, want intercept 3 slope 2", fit)
	}
	if !almost(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almost(got, 23, 1e-9) {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err != ErrMismatchedLengths {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("too-few err = %v", err)
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate fit should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if cv := s.CV(); cv <= 0 {
		t.Errorf("CV = %v, want > 0", cv)
	}
	var zero Summary
	if zero.CV() != 0 {
		t.Error("zero Summary CV should be 0")
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
}

func TestQuickErrorMagnitudeSymmetricInSign(t *testing.T) {
	// |pred-meas|/|meas| must be non-negative and zero iff pred==meas.
	prop := func(pred, meas float64) bool {
		if math.IsNaN(pred) || math.IsNaN(meas) {
			return true
		}
		e := ErrorMagnitude(pred, meas)
		if e < 0 {
			return false
		}
		if pred == meas && e != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFitLineRecoversLine(t *testing.T) {
	prop := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Keep coefficients in a sane range for numeric stability.
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		m := int(n%20) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = float64(i)
			ys[i] = a + b*float64(i)
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(a) + math.Abs(b))
		return almost(fit.Intercept, a, tol) && almost(fit.Slope, b, tol)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanBetweenMinAndMax(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
