package store

import (
	"reflect"
	"strings"
	"testing"

	"grophecy/internal/errdefs"
)

// FuzzSnapshotDecode holds the snapshot codec to its contract under
// arbitrary input: Decode never panics, never returns a partially
// valid entry alongside an error, and classifies every failure as
// either corrupt (errdefs.ErrCorruptSnapshot) or stale — and a
// successful decode must survive an Encode/Decode round trip bit for
// bit. `make fuzz-short` runs this continuously; the seed corpus
// always runs under plain `go test`.
func FuzzSnapshotDecode(f *testing.F) {
	good, err := Encode(entry("fx5600-pcie1", 42), testHash)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(good)
	f.Add([]byte(magic + "\n"))
	f.Add([]byte(magic + "\nsha256:00\n{}"))
	f.Add([]byte("grophecy-snap v9\nsha256:00\n{}"))
	f.Add(good[:len(good)/2])
	f.Add([]byte(strings.Repeat("\n", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data, testHash)
		if err != nil {
			if !reflect.DeepEqual(e, Entry{}) {
				t.Errorf("Decode returned a non-zero entry alongside error %v", err)
			}
			return
		}
		// Valid input: the entry must re-encode and decode to itself.
		out, err := Encode(e, testHash)
		if err != nil {
			t.Fatalf("re-encoding a decoded entry failed: %v", err)
		}
		again, err := Decode(out, testHash)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded entry failed: %v", err)
		}
		if !reflect.DeepEqual(again, e) {
			t.Errorf("round trip diverged: %+v vs %+v", again, e)
		}
		if errdefs.IsCorruptSnapshot(err) {
			t.Error("nil error classified as corrupt")
		}
	})
}
