// Package store persists the calibration cache across daemon
// restarts: a crash-safe, content-addressed snapshot of fitted PCIe
// transfer models on local disk.
//
// The paper's calibration is cheap but mandatory — two timed
// transfers fit α/β for the machine the daemon runs on (§III-C). That
// makes a calibration per-machine *state*, not per-request work:
// recomputing it on every restart cold-starts the whole serving tier
// for no new information. The store writes one small file per cached
// calibration and loads them at boot, so a restarted daemon warms its
// pool instantly and serves reports byte-identical to the pre-restart
// process.
//
// Keying and invalidation. An entry's identity is the calibration key
// (target name, backend name, host memory kind, machine seed) *plus*
// a content hash
// of the whole hardware-target registry *plus* the snapshot schema
// version — the same key + input hash + schema version discipline as
// a content-addressed build cache. The registry hash means editing any
// GPU/CPU/bus definition orphans every snapshot taken under the old
// definitions (they are skipped as stale, never replayed); the schema
// version does the same for format changes.
//
// Crash safety. Writes go to a temp file in the snapshot directory,
// are fsynced, atomically renamed into place, and the directory is
// fsynced — a crash at any point leaves either the old file, the new
// file, or a stray temp file, never a torn entry. Every file carries a
// SHA-256 checksum of its payload; a file that fails any integrity
// check (magic, checksum, JSON shape, implausible model) is moved
// aside to NAME.quarantined — kept for forensics, never deleted, never
// loaded — and reported as errdefs.ErrCorruptSnapshot. A damaged disk
// therefore degrades to a cold start for the damaged keys; it cannot
// crash the daemon or feed it garbage models.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"grophecy/internal/backend"
	"grophecy/internal/errdefs"
	"grophecy/internal/fault"
	"grophecy/internal/metrics"
	"grophecy/internal/pcie"
	"grophecy/internal/telemetry"
	"grophecy/internal/xfermodel"
)

// Snapshot instruments.
var (
	mWrites = metrics.Default.MustCounter("store_snapshot_writes_total",
		"calibration snapshot files written")
	mWriteErrors = metrics.Default.MustCounter("store_snapshot_write_errors_total",
		"calibration snapshot writes that failed")
	mLoaded = metrics.Default.MustGauge("store_snapshot_loaded_entries",
		"calibration entries loaded from the snapshot directory at last load")
	mQuarantined = metrics.Default.MustCounter("store_snapshot_quarantined_total",
		"corrupt snapshot files quarantined")
	mStale = metrics.Default.MustCounter("store_snapshot_stale_total",
		"snapshot files skipped for schema or registry-hash mismatch")
)

// SchemaVersion is the snapshot format version. Bump it whenever the
// encoded document shape changes; old files become stale, not corrupt.
// v2 added the backend dimension to the key and the backend fit to the
// entry.
const SchemaVersion = 2

// magic is the first line of every snapshot file.
const magic = "grophecy-snap v1"

// Ext and QuarantineExt are the snapshot file suffixes.
const (
	Ext           = ".snap"
	QuarantineExt = ".quarantined"
)

// Key identifies one persisted calibration, mirroring the engine
// pool's cache key.
type Key struct {
	Target  string          `json:"target"`
	Backend string          `json:"backend"`
	Kind    pcie.MemoryKind `json:"kind"`
	Seed    uint64          `json:"seed"`
}

// Entry is one persisted calibration: the backend's fit and α/β
// summary plus the bus-noise state right after the calibration
// transfers, which is what lets a warmed pool serve bit-identical
// reports.
type Entry struct {
	Key      Key                `json:"key"`
	Model    xfermodel.BusModel `json:"model"`
	Fit      backend.Fit        `json:"fit"`
	BusState uint64             `json:"busState"`
}

// document is the JSON payload of a snapshot file.
type document struct {
	Schema       int    `json:"schema"`
	RegistryHash string `json:"registryHash"`
	Entry        Entry  `json:"entry"`
}

// errStale marks a structurally valid snapshot written under a
// different schema version or registry hash. Stale files are skipped,
// not quarantined: they are not damaged, just from another world.
var errStale = errors.New("stale snapshot")

// Encode renders an entry as a snapshot file:
//
//	grophecy-snap v1
//	sha256:<hex digest of the payload>
//	<payload JSON>
func Encode(e Entry, registryHash string) ([]byte, error) {
	payload, err := json.Marshal(document{
		Schema:       SchemaVersion,
		RegistryHash: registryHash,
		Entry:        e,
	})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var b strings.Builder
	b.Grow(len(magic) + len(payload) + 80)
	b.WriteString(magic)
	b.WriteByte('\n')
	b.WriteString("sha256:")
	b.WriteString(hex.EncodeToString(sum[:]))
	b.WriteByte('\n')
	b.Write(payload)
	return []byte(b.String()), nil
}

// Decode parses and verifies a snapshot file. Integrity failures —
// wrong magic, checksum mismatch, malformed payload, implausible
// model — wrap errdefs.ErrCorruptSnapshot. A structurally sound file
// from another schema version or registry returns an error matching
// errStale via errors.Is. Decode never panics, whatever the input:
// FuzzSnapshotDecode holds it to that.
func Decode(data []byte, registryHash string) (Entry, error) {
	head, rest, ok := strings.Cut(string(data), "\n")
	if !ok || head != magic {
		return Entry{}, errdefs.Corruptf("bad magic %.40q", head)
	}
	sumLine, payload, ok := strings.Cut(rest, "\n")
	if !ok || !strings.HasPrefix(sumLine, "sha256:") {
		return Entry{}, errdefs.Corruptf("missing checksum line")
	}
	want := strings.TrimPrefix(sumLine, "sha256:")
	got := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(got[:]) != want {
		return Entry{}, errdefs.Corruptf("checksum mismatch")
	}
	var doc document
	if err := json.Unmarshal([]byte(payload), &doc); err != nil {
		return Entry{}, errdefs.Corruptf("malformed payload: %v", err)
	}
	if doc.Schema != SchemaVersion {
		return Entry{}, fmt.Errorf("%w: schema %d (running %d)", errStale, doc.Schema, SchemaVersion)
	}
	if doc.RegistryHash != registryHash {
		return Entry{}, fmt.Errorf("%w: registry hash %.12s (running %.12s)",
			errStale, doc.RegistryHash, registryHash)
	}
	e := doc.Entry
	if e.Key.Target == "" || e.Key.Backend == "" || !e.Key.Kind.Valid() {
		return Entry{}, errdefs.Corruptf("invalid key %+v", e.Key)
	}
	if !e.Model.Valid() {
		return Entry{}, errdefs.Corruptf("implausible model for %s/%s/%v/seed=%d",
			e.Key.Target, e.Key.Backend, e.Key.Kind, e.Key.Seed)
	}
	if err := e.Fit.Validate(); err != nil {
		return Entry{}, errdefs.Corruptf("invalid fit for %s/%s/%v/seed=%d: %v",
			e.Key.Target, e.Key.Backend, e.Key.Kind, e.Key.Seed, err)
	}
	if e.Fit.Backend != e.Key.Backend || e.Fit.Kind != e.Key.Kind {
		return Entry{}, errdefs.Corruptf("fit/key mismatch for %s/%s/%v/seed=%d",
			e.Key.Target, e.Key.Backend, e.Key.Kind, e.Key.Seed)
	}
	return e, nil
}

// Store is a snapshot directory bound to one registry fingerprint.
type Store struct {
	dir   string
	hash  string
	chaos *fault.Chaos
}

// Open prepares dir as a snapshot directory for the given registry
// fingerprint, creating it if needed. chaos, when non-nil, injects
// snapshot I/O faults (write failures, read corruption) for the chaos
// harness; pass nil in production.
func Open(dir, registryHash string, chaos *fault.Chaos) (*Store, error) {
	if dir == "" {
		return nil, errdefs.Invalidf("store: empty snapshot directory")
	}
	if registryHash == "" {
		return nil, errdefs.Invalidf("store: empty registry hash")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating snapshot dir: %w", err)
	}
	return &Store{dir: dir, hash: registryHash, chaos: chaos}, nil
}

// Dir returns the snapshot directory path.
func (s *Store) Dir() string { return s.dir }

// filename derives the content-addressed file name of a key: a
// SHA-256 over the key, the registry hash, and the schema version, so
// two registries (or schema versions) never collide on a file.
func (s *Store) filename(k Key) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%s|%d",
		k.Target, k.Backend, k.Kind, k.Seed, s.hash, SchemaVersion)))
	return hex.EncodeToString(h[:16]) + Ext
}

// Put atomically persists one entry: temp file, fsync, rename, fsync
// of the directory. A failed write (including an injected chaos
// fault) leaves no trace of the new entry and never damages an old
// one.
func (s *Store) Put(e Entry) error {
	return s.PutCtx(context.Background(), e)
}

// PutCtx is Put under a context: when the context carries a request
// wall tracer (the daemon's write-through path), the snapshot I/O
// shows up on the request's trace as a snap.put span.
func (s *Store) PutCtx(ctx context.Context, e Entry) error {
	_, span := telemetry.Start(ctx, "snap.put")
	span.SetAttr(telemetry.String("snap_target", e.Key.Target))
	defer span.End()
	if err := s.put(e); err != nil {
		span.SetAttr(telemetry.Bool("snap_ok", false))
		mWriteErrors.Inc()
		return err
	}
	span.SetAttr(telemetry.Bool("snap_ok", true))
	mWrites.Inc()
	return nil
}

func (s *Store) put(e Entry) error {
	if err := s.chaos.SnapshotWriteError(); err != nil {
		return fmt.Errorf("store: writing %s/%v/seed=%d: %w",
			e.Key.Target, e.Key.Kind, e.Key.Seed, err)
	}
	data, err := Encode(e, s.hash)
	if err != nil {
		return fmt.Errorf("store: encoding %s/%v/seed=%d: %w",
			e.Key.Target, e.Key.Kind, e.Key.Seed, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing temp file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing temp file: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: chmod temp file: %w", err)
	}
	final := filepath.Join(s.dir, s.filename(e.Key))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: renaming into place: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing dir: %w", err)
	}
	return nil
}

// SaveAll persists every entry, continuing past individual failures
// and joining their errors — a periodic snapshot should save what it
// can.
func (s *Store) SaveAll(entries []Entry) error {
	return s.SaveAllCtx(context.Background(), entries)
}

// SaveAllCtx is SaveAll under a context, wrapped in a snap.save wall
// span when one is being recorded.
func (s *Store) SaveAllCtx(ctx context.Context, entries []Entry) error {
	ctx, span := telemetry.Start(ctx, "snap.save")
	span.SetAttr(telemetry.Int("snap_entries", int64(len(entries))))
	defer span.End()
	var errs []error
	for _, e := range entries {
		if err := s.PutCtx(ctx, e); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Result is what a Load found.
type Result struct {
	// Entries are the verified calibrations, sorted by key for
	// deterministic warm-start order.
	Entries []Entry
	// Stale counts structurally valid files from another schema
	// version or registry hash (skipped, left in place).
	Stale int
	// Quarantined counts corrupt files moved aside to *.quarantined.
	Quarantined int
	// Duration is how long the load took.
	Duration time.Duration
	// Problems carries one error per corrupt or unreadable file, each
	// wrapping errdefs.ErrCorruptSnapshot where integrity failed, for
	// the caller to log. Load itself never fails on file damage.
	Problems []error
}

// Load scans the snapshot directory and returns every entry that
// passes verification. Corrupt files are quarantined (renamed to
// NAME.quarantined, bytes preserved) and reported in Problems; stale
// files are skipped; stray temp files from interrupted writes are
// removed. Damage never fails the load — the worst disk yields an
// empty, usable store.
func (s *Store) Load() (Result, error) {
	return s.LoadCtx(context.Background())
}

// LoadCtx is Load under a context, wrapped in a snap.load wall span
// (with the warm-start outcome as attributes) when one is recorded.
func (s *Store) LoadCtx(ctx context.Context) (Result, error) {
	_, span := telemetry.Start(ctx, "snap.load")
	defer span.End()
	res, err := s.load()
	span.SetAttr(telemetry.Int("snap_loaded", int64(len(res.Entries))))
	span.SetAttr(telemetry.Int("snap_stale", int64(res.Stale)))
	span.SetAttr(telemetry.Int("snap_quarantined", int64(res.Quarantined)))
	return res, err
}

func (s *Store) load() (Result, error) {
	start := time.Now()
	var res Result
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return res, fmt.Errorf("store: reading snapshot dir: %w", err)
	}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			// A crash mid-write left a temp file; it was never visible
			// as an entry, so removing it is safe.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasSuffix(name, Ext) {
			continue
		}
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			res.Problems = append(res.Problems, fmt.Errorf("store: reading %s: %w", name, err))
			continue
		}
		data = s.chaos.CorruptRead(data)
		e, err := Decode(data, s.hash)
		switch {
		case err == nil:
			res.Entries = append(res.Entries, e)
		case errors.Is(err, errStale):
			res.Stale++
			mStale.Inc()
		default:
			// Corrupt: quarantine, never delete, never load.
			if qerr := os.Rename(path, path+QuarantineExt); qerr != nil {
				err = errors.Join(err, fmt.Errorf("store: quarantining %s: %w", name, qerr))
			}
			res.Quarantined++
			mQuarantined.Inc()
			res.Problems = append(res.Problems, fmt.Errorf("store: %s: %w", name, err))
		}
	}
	sort.Slice(res.Entries, func(i, j int) bool {
		a, b := res.Entries[i].Key, res.Entries[j].Key
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Seed < b.Seed
	})
	res.Duration = time.Since(start)
	mLoaded.Set(float64(len(res.Entries)))
	return res, nil
}
