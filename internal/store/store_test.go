package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"grophecy/internal/backend"
	"grophecy/internal/errdefs"
	"grophecy/internal/fault"
	"grophecy/internal/pcie"
	"grophecy/internal/xfermodel"
)

const testHash = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func entry(target string, seed uint64) Entry {
	var bm xfermodel.BusModel
	bm.Kind = pcie.Pinned
	bm.CalibrationCost = 0.25
	bm.CalibrationTransfers = 40
	bm.Dir[pcie.HostToDevice] = xfermodel.Model{Alpha: 1.5e-5, Beta: 6.5e-10}
	bm.Dir[pcie.DeviceToHost] = xfermodel.Model{Alpha: 1.7e-5, Beta: 7.0e-10}
	payload, err := json.Marshal(bm)
	if err != nil {
		panic(err)
	}
	return Entry{
		Key:      Key{Target: target, Backend: backend.DefaultName, Kind: pcie.Pinned, Seed: seed},
		Model:    bm,
		Fit:      backend.Fit{Backend: backend.DefaultName, Kind: pcie.Pinned, Payload: payload},
		BusState: 0xdeadbeefcafe ^ seed,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := entry("fx5600-pcie1", 42)
	data, err := Encode(e, testHash)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, testHash)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, e)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	e := entry("fx5600-pcie1", 42)
	good, err := Encode(e, testHash)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            nil,
		"garbage":          []byte("not a snapshot at all"),
		"bad magic":        append([]byte("grophecy-snap v9\n"), good[len(magic)+1:]...),
		"no checksum line": []byte(magic + "\n{}"),
		"truncated":        good[:len(good)-4],
	}
	// One flipped payload byte must fail the checksum.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0xff
	cases["flipped byte"] = flipped
	// A valid checksum over an implausible model must still be corrupt.
	bad := e
	bad.Model.Dir[pcie.HostToDevice].Alpha = -1
	badData, err := Encode(bad, testHash)
	if err != nil {
		t.Fatal(err)
	}
	cases["implausible model"] = badData

	for name, data := range cases {
		if _, err := Decode(data, testHash); !errdefs.IsCorruptSnapshot(err) {
			t.Errorf("%s: Decode = %v, want ErrCorruptSnapshot", name, err)
		}
	}
}

func TestDecodeStaleIsNotCorrupt(t *testing.T) {
	e := entry("fx5600-pcie1", 42)
	data, err := Encode(e, testHash)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(data, "anotherhash")
	if err == nil || !errors.Is(err, errStale) {
		t.Errorf("registry-hash mismatch: %v, want errStale", err)
	}
	if errdefs.IsCorruptSnapshot(err) {
		t.Error("stale snapshot classified as corrupt")
	}
}

func TestPutLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{entry("a-target", 1), entry("a-target", 2), entry("b-target", 1)}
	// Save in scrambled order; Load must return sorted-by-key.
	for _, e := range []Entry{want[2], want[0], want[1]} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Re-putting an entry overwrites its file, not duplicates it.
	if err := s.Put(want[0]); err != nil {
		t.Fatal(err)
	}
	res, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(want) {
		t.Fatalf("loaded %d entries, want %d", len(res.Entries), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(res.Entries[i], want[i]) {
			t.Errorf("entry %d = %+v, want %+v", i, res.Entries[i], want[i])
		}
	}
	if res.Quarantined != 0 || res.Stale != 0 || len(res.Problems) != 0 {
		t.Errorf("clean load reported quarantined=%d stale=%d problems=%v",
			res.Quarantined, res.Stale, res.Problems)
	}
}

func TestLoadQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(entry("good-target", 1)); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "feedfacefeedface"+Ext)
	if err := os.WriteFile(corrupt, []byte("garbage bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Key.Target != "good-target" {
		t.Errorf("load returned %d entries, want the 1 good one", len(res.Entries))
	}
	if res.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", res.Quarantined)
	}
	if len(res.Problems) != 1 || !errdefs.IsCorruptSnapshot(res.Problems[0]) {
		t.Errorf("problems = %v, want one ErrCorruptSnapshot", res.Problems)
	}
	// The damaged bytes are preserved under .quarantined, and the
	// original name is gone so a later load does not re-process it.
	if _, err := os.Stat(corrupt); !os.IsNotExist(err) {
		t.Error("corrupt file still present under its original name")
	}
	kept, err := os.ReadFile(corrupt + QuarantineExt)
	if err != nil {
		t.Fatalf("quarantined bytes missing: %v", err)
	}
	if !bytes.Equal(kept, []byte("garbage bytes")) {
		t.Error("quarantine did not preserve the damaged bytes")
	}
	res2, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Quarantined != 0 || len(res2.Entries) != 1 {
		t.Errorf("second load re-processed the quarantined file: %+v", res2)
	}
}

func TestLoadSkipsStaleAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, "oldhash", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put(entry("old-target", 1)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".tmp-123456")
	if err := os.WriteFile(tmp, []byte("half a write"), 0o600); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, testHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(entry("new-target", 1)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Key.Target != "new-target" {
		t.Errorf("entries = %+v, want only new-target", res.Entries)
	}
	if res.Stale != 1 {
		t.Errorf("stale = %d, want 1", res.Stale)
	}
	if res.Quarantined != 0 {
		t.Errorf("quarantined = %d, want 0 (stale is not corrupt)", res.Quarantined)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stray temp file survived the load")
	}
}

func TestChaosWriteFaultLeavesNoTrace(t *testing.T) {
	chaos, err := fault.ParseChaos("snap-write-err=1,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir, testHash, chaos)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(entry("a-target", 1)); !errdefs.IsTransient(err) {
		t.Fatalf("chaos write = %v, want transient", err)
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 0 {
		t.Errorf("failed write left %d files behind", len(dirents))
	}
}

func TestChaosReadCorruptionIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	clean, err := Open(dir, testHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Put(entry("a-target", 1)); err != nil {
		t.Fatal(err)
	}
	chaos, err := fault.ParseChaos("snap-corrupt=1,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, testHash, chaos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 || res.Quarantined != 1 {
		t.Errorf("corrupted read: entries=%d quarantined=%d, want 0 and 1",
			len(res.Entries), res.Quarantined)
	}
}

func TestSaveAllContinuesPastFailures(t *testing.T) {
	// snap-write-err=0.5 at this seed fails some writes but not all;
	// SaveAll must persist the survivors and join the failures.
	chaos, err := fault.ParseChaos("snap-write-err=0.5,seed=21")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir, testHash, chaos)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for seed := uint64(1); seed <= 16; seed++ {
		entries = append(entries, entry("a-target", seed))
	}
	errAll := s.SaveAll(entries)
	if errAll == nil {
		t.Fatal("SaveAll reported no failures at snap-write-err=0.5 over 16 writes")
	}
	res, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 || len(res.Entries) == len(entries) {
		t.Errorf("survivors = %d of %d, want a strict subset", len(res.Entries), len(entries))
	}
}

func TestOpenRejectsBadInputs(t *testing.T) {
	if _, err := Open("", testHash, nil); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Errorf("empty dir: %v", err)
	}
	if _, err := Open(t.TempDir(), "", nil); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Errorf("empty hash: %v", err)
	}
}

func TestFilenameIsContentAddressed(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, testHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, "otherhash", nil)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Target: "a-target", Backend: backend.DefaultName, Kind: pcie.Pinned, Seed: 1}
	if a.filename(k) != a.filename(k) {
		t.Error("filename unstable for one key")
	}
	if a.filename(k) == b.filename(k) {
		t.Error("different registry hashes share a filename")
	}
	k2 := k
	k2.Seed = 2
	if a.filename(k) == a.filename(k2) {
		t.Error("different seeds share a filename")
	}
	if !strings.HasSuffix(a.filename(k), Ext) {
		t.Errorf("filename %q lacks the %s suffix", a.filename(k), Ext)
	}
}
