// Dynamic-submission worker pool. Run/RunAllCtx fan a *fixed* list of
// n inputs out and join; a dependency-aware caller (the batch DAG
// scheduler) does not know its work-list up front — a job becomes
// runnable only when its parents finish. Pool serves that shape: a
// fixed set of workers consuming tasks submitted one at a time, with
// every completion delivered on a results channel so the submitter
// can react (dispatch newly ready work) before the pool drains.
//
// Failure semantics match Run: a panicking task is recovered into an
// error wrapping errdefs.ErrPanic, and tasks consumed after the pool
// context is cancelled are not executed — they complete immediately
// with the context's error. Every submitted task produces exactly one
// result, so a consumer counting submissions never hangs.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"grophecy/internal/obs"
)

// PoolResult is one completed task: the submitter's index, the value,
// and the error (a recovered panic wraps errdefs.ErrPanic; a task
// cancelled before it ran wraps the pool context's error).
type PoolResult[T any] struct {
	Index int
	Value T
	Err   error
}

// poolTask pairs a submitted function with its index.
type poolTask[T any] struct {
	index int
	fn    func() (T, error)
}

// Pool is a dynamically fed worker pool. Create with NewPool, feed
// with Submit, consume Results, and Close once everything is
// submitted. The zero value is unusable.
type Pool[T any] struct {
	ctx     context.Context
	tasks   chan poolTask[T]
	results chan PoolResult[T]
	wg      sync.WaitGroup
}

// NewPool starts workers goroutines (GOMAXPROCS if workers <= 0)
// consuming submitted tasks. capacity bounds how many submissions can
// be in flight (queued + unconsumed results) without blocking; size
// it to the total number of tasks when that is known — the batch
// scheduler uses the job count — so Submit and result delivery never
// block each other.
func NewPool[T any](ctx context.Context, workers, capacity int) *Pool[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool[T]{
		ctx:     ctx,
		tasks:   make(chan poolTask[T], capacity),
		results: make(chan PoolResult[T], capacity),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			// Same pprof labels as the fixed-fan-out workers, so both
			// pool shapes attribute identically in CPU profiles.
			labels := pprof.Labels("subsystem", "sweep", "sweep_worker", strconv.Itoa(w))
			pprof.Do(ctx, labels, func(context.Context) {
				mWorkers.Add(1)
				defer mWorkers.Add(-1)
				lg := obs.Log(obs.WithPhase(ctx, "sweep"))
				for t := range p.tasks {
					r := PoolResult[T]{Index: t.index}
					if err := ctx.Err(); err != nil {
						r.Err = fmt.Errorf("sweep: input %d not scheduled: %w", t.index, err)
					} else {
						r.Value, r.Err = protect(func(int) (T, error) { return t.fn() }, t.index)
					}
					mTasks.Inc()
					if r.Err != nil {
						mFailures.Inc()
						lg.Warn("sweep input failed", "input", t.index, "err", r.Err.Error())
					}
					p.results <- r
				}
			})
		}(w)
	}
	go func() {
		p.wg.Wait()
		close(p.results)
	}()
	return p
}

// Submit enqueues one task. index is echoed on the task's PoolResult;
// it carries no meaning to the pool itself, so duplicate indices are
// the submitter's business. Submit blocks only when more than
// capacity submissions are outstanding, and must not be called after
// Close.
func (p *Pool[T]) Submit(index int, fn func() (T, error)) {
	p.tasks <- poolTask[T]{index: index, fn: fn}
}

// Results delivers one PoolResult per submitted task, in completion
// order. The channel closes after Close once every accepted task has
// completed.
func (p *Pool[T]) Results() <-chan PoolResult[T] {
	return p.results
}

// Close announces that no more tasks will be submitted. In-flight and
// queued tasks still complete (queued tasks complete with an error if
// the pool context is cancelled); Results closes once they have all
// been delivered.
func (p *Pool[T]) Close() {
	close(p.tasks)
}
