package sweep

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"grophecy/internal/errdefs"
)

func TestPoolDeliversEveryResult(t *testing.T) {
	const n = 32
	p := NewPool[int](context.Background(), 4, n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(i, func() (int, error) { return i * i, nil })
	}
	p.Close()
	seen := make(map[int]int)
	for r := range p.Results() {
		if r.Err != nil {
			t.Errorf("input %d: %v", r.Index, r.Err)
		}
		seen[r.Index] = r.Value
	}
	if len(seen) != n {
		t.Fatalf("got %d results, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		if seen[i] != i*i {
			t.Errorf("seen[%d] = %d, want %d", i, seen[i], i*i)
		}
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool[string](context.Background(), 2, 2)
	p.Submit(0, func() (string, error) { panic("kaboom") })
	p.Submit(1, func() (string, error) { return "fine", nil })
	p.Close()
	var panicked, ok bool
	for r := range p.Results() {
		switch r.Index {
		case 0:
			panicked = errors.Is(r.Err, errdefs.ErrPanic)
		case 1:
			ok = r.Err == nil && r.Value == "fine"
		}
	}
	if !panicked {
		t.Error("panicking task did not yield ErrPanic")
	}
	if !ok {
		t.Error("healthy task was poisoned by its neighbour's panic")
	}
}

func TestPoolCancelledTasksComplete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 8
	p := NewPool[int](ctx, 2, n)
	for i := 0; i < n; i++ {
		p.Submit(i, func() (int, error) {
			t.Error("task ran under a cancelled context")
			return 0, nil
		})
	}
	p.Close()
	count := 0
	for r := range p.Results() {
		count++
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("input %d: err = %v, want context.Canceled", r.Index, r.Err)
		}
	}
	if count != n {
		t.Fatalf("got %d results, want %d — cancelled submissions must not vanish", count, n)
	}
}

func TestPoolDynamicSubmission(t *testing.T) {
	// The DAG scheduler's shape: react to each completion by submitting
	// the next link of a chain while the pool is live.
	const depth = 10
	p := NewPool[int](context.Background(), 2, depth)
	p.Submit(0, func() (int, error) { return 0, nil })
	got := 0
	for r := range p.Results() {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		got++
		if next := r.Index + 1; next < depth {
			p.Submit(next, func() (int, error) { return next, nil })
		} else {
			p.Close()
		}
	}
	if got != depth {
		t.Fatalf("chained %d completions, want %d", got, depth)
	}
}

func TestPoolErrorsPassThrough(t *testing.T) {
	p := NewPool[struct{}](context.Background(), 1, 1)
	boom := fmt.Errorf("boom")
	p.Submit(7, func() (struct{}, error) { return struct{}{}, boom })
	p.Close()
	r := <-p.Results()
	if r.Index != 7 || !errors.Is(r.Err, boom) {
		t.Fatalf("result = %+v, want index 7 with boom", r)
	}
}
