// Package sweep provides a small deterministic parallel-map utility
// for parameter sweeps.
//
// Experiments in this repository are single-machine-deterministic: a
// given seed always produces the same numbers. Sweeps over *many*
// machine instances (seed-sensitivity studies, architecture grids)
// are embarrassingly parallel — each point owns its own simulated
// machine — so they run on a bounded worker pool. Results come back
// in input order regardless of scheduling, preserving determinism.
//
// Failure semantics: every input is attempted (unless the context is
// cancelled first), every failure is kept, and all failures are
// aggregated with errors.Join — no first-error-wins truncation. A
// panicking worker function is recovered into an error carrying the
// panic value and the goroutine stack (errdefs.ErrPanic), so one bad
// input cannot take down a whole sweep.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"

	"grophecy/internal/errdefs"
	"grophecy/internal/metrics"
	"grophecy/internal/obs"
)

// Sweep instruments: task and failure counts plus the number of live
// workers, so a -metrics dump shows how parallel a run actually was.
var (
	mTasks = metrics.Default.MustCounter("sweep_tasks_total",
		"sweep inputs attempted")
	mFailures = metrics.Default.MustCounter("sweep_failures_total",
		"sweep inputs that returned an error (panics included)")
	mWorkers = metrics.Default.MustGauge("sweep_workers",
		"sweep worker goroutines currently running")
)

// Run maps fn over n inputs using at most workers goroutines and
// returns the n results in input order. If workers <= 0, it defaults
// to GOMAXPROCS. All worker errors are aggregated with errors.Join
// (each wrapped with its input index); on any error the result slice
// is nil.
//
// fn must be safe to call concurrently for distinct indices (each
// index should own its state — e.g. its own simulated machine).
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run with cancellation: once ctx is cancelled, no new
// indices are scheduled (in-flight calls run to completion), and
// ctx's error is joined into the returned error. Results computed
// before cancellation are discarded, matching Run's all-or-nothing
// contract.
func RunCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	results, errs, scheduled, err := runAll(ctx, n, workers, fn)
	if err != nil {
		return nil, err
	}
	joined := make([]error, 0, n+1)
	for _, s := range scheduled {
		if !s {
			joined = append(joined, ctx.Err())
			break
		}
	}
	for i, err := range errs {
		if err != nil && scheduled[i] {
			joined = append(joined, fmt.Errorf("sweep: input %d: %w", i, err))
		}
	}
	if err := errors.Join(joined...); err != nil {
		return nil, err
	}
	return results, nil
}

// RunAllCtx is the partial-results variant serving batch endpoints:
// it maps fn over n inputs like RunCtx but keeps every per-input
// outcome instead of collapsing them. It returns one result and one
// error per input — a failed (or panicked) input carries its error in
// errs[i] while every other input's result remains usable. Inputs
// never scheduled because ctx was cancelled carry ctx's error. The
// final error reports only invalid arguments (n < 0), never
// per-input failures.
func RunAllCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, []error, error) {
	results, errs, scheduled, err := runAll(ctx, n, workers, fn)
	if err != nil {
		return nil, nil, err
	}
	for i := range errs {
		if !scheduled[i] {
			errs[i] = fmt.Errorf("sweep: input %d not scheduled: %w", i, ctx.Err())
		}
	}
	return results, errs, nil
}

// runAll is the shared worker-pool core: it attempts every input
// until ctx is cancelled and reports, per input, the result, the
// error, and whether the input was scheduled at all.
func runAll[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) (results []T, errs []error, scheduled []bool, err error) {
	if n < 0 {
		return nil, nil, nil, errdefs.Invalidf("sweep: negative input count %d", n)
	}
	if n == 0 {
		return nil, nil, nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results = make([]T, n)
	errs = make([]error, n)
	scheduled = make([]bool, n)
	indices := make(chan int)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// pprof labels make sweep workers attributable in real-CPU
			// profiles: `go test -cpuprofile`, or — against a live
			// daemon — the /debug/pprof/profile endpoint grophecyd
			// serves (see docs/OBSERVABILITY.md).
			labels := pprof.Labels("subsystem", "sweep", "sweep_worker", strconv.Itoa(w))
			pprof.Do(ctx, labels, func(context.Context) {
				mWorkers.Add(1)
				defer mWorkers.Add(-1)
				lg := obs.Log(obs.WithPhase(ctx, "sweep"))
				for i := range indices {
					results[i], errs[i] = protect(fn, i)
					mTasks.Inc()
					if errs[i] != nil {
						mFailures.Inc()
						lg.Warn("sweep input failed", "input", i, "err", errs[i].Error())
					}
				}
			})
		}(w)
	}
schedule:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
			scheduled[i] = true
		case <-ctx.Done():
			break schedule
		}
	}
	close(indices)
	wg.Wait()
	return results, errs, scheduled, nil
}

// protect invokes fn(i), converting a panic into an error that wraps
// errdefs.ErrPanic and carries the recovered value plus the stack.
func protect[T any](fn func(i int) (T, error), i int) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			result = zero
			err = fmt.Errorf("%w: %v\n%s", errdefs.ErrPanic, r, debug.Stack())
		}
	}()
	return fn(i)
}

// Map is Run with one worker per available CPU.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return Run(n, 0, fn)
}
