// Package sweep provides a small deterministic parallel-map utility
// for parameter sweeps.
//
// Experiments in this repository are single-machine-deterministic: a
// given seed always produces the same numbers. Sweeps over *many*
// machine instances (seed-sensitivity studies, architecture grids)
// are embarrassingly parallel — each point owns its own simulated
// machine — so they run on a bounded worker pool. Results come back
// in input order regardless of scheduling, preserving determinism.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Run maps fn over n inputs using at most workers goroutines and
// returns the n results in input order. If workers <= 0, it defaults
// to GOMAXPROCS. The first error wins and is returned after all
// workers drain; its result slice is nil.
//
// fn must be safe to call concurrently for distinct indices (each
// index should own its state — e.g. its own simulated machine).
func Run[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative input count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	indices := make(chan int)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: input %d: %w", i, err)
		}
	}
	return results, nil
}

// Map is Run with one worker per available CPU.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return Run(n, 0, fn)
}
