package sweep

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"grophecy/internal/errdefs"
)

func TestRunPreservesOrder(t *testing.T) {
	got, err := Run(100, 7, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestRunZeroInputs(t *testing.T) {
	got, err := Run(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunNegativeInputs(t *testing.T) {
	if _, err := Run(-1, 4, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(50, 8, func(i int) (int, error) {
		if i == 33 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBoundsWorkers(t *testing.T) {
	var active, peak int64
	_, err := Run(64, 3, func(i int) (int, error) {
		cur := atomic.AddInt64(&active, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
				break
			}
		}
		// Small busy loop to let overlap happen.
		s := 0
		for j := 0; j < 10000; j++ {
			s += j
		}
		atomic.AddInt64(&active, -1)
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	got, err := Map(10, func(i int) (string, error) { return "x", nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestQuickRunMatchesSequential(t *testing.T) {
	prop := func(n uint8, workers uint8) bool {
		fn := func(i int) (int, error) { return 3*i + 1, nil }
		par, err := Run(int(n), int(workers%8), fn)
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			want, _ := fn(i)
			if par[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAggregatesAllErrors(t *testing.T) {
	errA := errors.New("boom A")
	errB := errors.New("boom B")
	_, err := Run(50, 8, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errA
		case 41:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("err = %v, want both boom A and boom B joined", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(20, 4, func(i int) (int, error) {
		if i == 13 {
			panic("unlucky input")
		}
		return i, nil
	})
	if !errors.Is(err, errdefs.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if !strings.Contains(err.Error(), "unlucky input") {
		t.Errorf("err %q does not carry the panic value", err)
	}
	if !strings.Contains(err.Error(), "sweep.protect") {
		t.Errorf("err %q does not carry a stack trace", err)
	}
}

func TestRunCtxStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	_, err := RunCtx(ctx, 1000, 2, func(i int) (int, error) {
		atomic.AddInt64(&started, 1)
		if i == 0 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&started); n >= 1000 {
		t.Errorf("all %d inputs ran despite cancellation", n)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	_, err := RunCtx(ctx, 100, 4, func(i int) (int, error) {
		atomic.AddInt64(&ran, 1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunAllCtxKeepsPartialResults: unlike RunCtx, per-input failures
// do not discard the other inputs' results.
func TestRunAllCtxKeepsPartialResults(t *testing.T) {
	boom := errors.New("boom")
	results, errs, err := RunAllCtx(context.Background(), 10, 4, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, boom
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			if !errors.Is(errs[i], boom) {
				t.Errorf("errs[%d] = %v, want boom", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
		if results[i] != i*i {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
}

// TestRunAllCtxRecoversPanics: a panicking input is its own failure,
// not the batch's.
func TestRunAllCtxRecoversPanics(t *testing.T) {
	results, errs, err := RunAllCtx(context.Background(), 5, 2, func(i int) (int, error) {
		if i == 2 {
			panic("input 2 exploded")
		}
		return i + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[2], errdefs.ErrPanic) {
		t.Fatalf("errs[2] = %v, want errdefs.ErrPanic", errs[2])
	}
	if !strings.Contains(errs[2].Error(), "input 2 exploded") {
		t.Errorf("panic value lost: %v", errs[2])
	}
	for _, i := range []int{0, 1, 3, 4} {
		if errs[i] != nil || results[i] != i+1 {
			t.Errorf("input %d: result %d err %v, want %d and nil", i, results[i], errs[i], i+1)
		}
	}
}

// TestRunAllCtxCancellationMarksUnscheduled: inputs never scheduled
// because the context died carry the context's error.
func TestRunAllCtxCancellationMarksUnscheduled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs, err := RunAllCtx(ctx, 8, 2, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 || len(errs) != 8 {
		t.Fatalf("got %d results, %d errs, want 8 each", len(results), len(errs))
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, e)
		}
	}
}
