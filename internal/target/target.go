// Package target makes hardware targets first-class: a named,
// validated combination of GPU architecture, CPU architecture, and
// bus configuration that the projection pipeline can be pointed at.
//
// The paper evaluates exactly one node (Xeon E5405 + Quadro FX 5600 +
// PCIe v1 x16), but its §V-C sensitivity discussion asks how the
// verdict shifts on other hardware. This package turns that question
// into an API: a Registry maps short stable names ("fx5600-pcie1",
// "c2050-pcie3") to Target values, and a Target is a machine factory
// — Machine(seed) builds the simulated node the staged engine
// evaluates. The Default registry is seeded with every built-in GPU
// preset crossed with the PCIe generations on the paper's CPU, plus a
// newer-CPU row per GPU so projections vary on the CPU axis too.
//
// Names are part of the public surface: the grophecy -target flag,
// the daemon's ?target= parameter and GET /targets endpoint, and the
// calibration cache key (internal/engine) all speak registry names.
package target

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"grophecy/internal/core"
	"grophecy/internal/cpumodel"
	"grophecy/internal/errdefs"
	"grophecy/internal/gpu"
	"grophecy/internal/pcie"
)

// DefaultName is the registry name of the paper's evaluation node.
// Projections at this target are byte-identical to core.NewMachine.
const DefaultName = "fx5600-pcie1"

// Target is one fully specified hardware configuration.
type Target struct {
	// Name is the short registry key ("fx5600-pcie1"): lowercase
	// letters, digits, and dashes.
	Name string
	// Description is the human-readable summary shown by listings.
	Description string

	GPU gpu.Arch
	CPU cpumodel.Arch
	Bus pcie.Config
	// BusName labels the bus configuration ("PCIe v1 x16"); pcie.Config
	// itself is anonymous.
	BusName string
	// BusGen and BusLanes identify the link ("gen 3 x16"); 0/0 for
	// non-PCIe links like NVLink.
	BusGen   int
	BusLanes int
	// Memory is the host memory kind this target calibrates and
	// measures with. The zero value is pcie.Pinned — the paper's
	// assumption, and what every historical target name means.
	Memory pcie.MemoryKind
}

// nameOK reports whether s is a legal registry name.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return false
		}
	}
	return s[0] != '-' && s[len(s)-1] != '-'
}

// Validate checks the target and every component in it.
func (t Target) Validate() error {
	if !nameOK(t.Name) {
		return errdefs.Invalidf("target: illegal name %q (want lowercase letters, digits, dashes)", t.Name)
	}
	if t.BusName == "" {
		return errdefs.Invalidf("target %s: empty bus name", t.Name)
	}
	if err := t.GPU.Validate(); err != nil {
		return fmt.Errorf("target %s: %w", t.Name, err)
	}
	if err := t.CPU.Validate(); err != nil {
		return fmt.Errorf("target %s: %w", t.Name, err)
	}
	if err := t.Bus.Validate(); err != nil {
		return fmt.Errorf("target %s: %w", t.Name, err)
	}
	if !t.Memory.Valid() {
		return errdefs.Invalidf("target %s: invalid memory kind %d", t.Name, t.Memory)
	}
	return nil
}

// Machine builds the simulated evaluation node for this target, with
// all noise streams derived from seed. It is the single factory the
// commands and the calibration cache use, replacing ad-hoc
// core.NewMachineWith call sites.
func (t Target) Machine(seed uint64) *core.Machine {
	return core.NewMachineWith(t.GPU, t.CPU, t.Bus, seed)
}

// String renders the component summary ("NVIDIA Quadro FX 5600 +
// Intel Xeon E5405 (8 threads) + PCIe v1 x16").
func (t Target) String() string {
	s := t.GPU.Name + " + " + t.CPU.Name + " + " + t.BusName
	if t.Memory == pcie.Pageable {
		s += " (pageable)"
	}
	return s
}

// Registry is a concurrency-safe name → Target map.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Target
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Target)}
}

// Register validates t and adds it under its name. Re-registering an
// existing name is an error; registries are append-only so cached
// calibrations can never silently point at different hardware.
func (r *Registry) Register(t Target) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[t.Name]; ok {
		return errdefs.Invalidf("target: %q already registered", t.Name)
	}
	r.m[t.Name] = t
	return nil
}

// MustRegister is Register, panicking on error (for init-time use).
func (r *Registry) MustRegister(t Target) {
	if err := r.Register(t); err != nil {
		panic(err)
	}
}

// Lookup returns the target registered under name.
func (r *Registry) Lookup(name string) (Target, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.m[name]
	return t, ok
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fingerprint returns a content hash of the registry: a hex SHA-256
// over every registered target's full hardware definition, in name
// order. Persisted calibration snapshots (internal/store) embed this
// hash in their key, so editing a GPU preset, a CPU model, or a bus
// configuration — anything that would change what a calibration
// measures — invalidates every snapshot taken under the old
// definitions instead of silently replaying them against different
// hardware. Registries are append-only, so the fingerprint of a
// running process never changes after init.
func (r *Registry) Fingerprint() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		t := r.m[n]
		fmt.Fprintf(h, "%s|%+v|%+v|%+v|%s|gen%d|x%d|mem%d\n",
			t.Name, t.GPU, t.CPU, t.Bus, t.BusName, t.BusGen, t.BusLanes, t.Memory)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// List returns all registered targets in name order.
func (r *Registry) List() []Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts := make([]Target, 0, len(r.m))
	for _, t := range r.m {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
	return ts
}

// Default is the registry seeded with the built-in hardware matrix.
// Commands resolve -target / ?target= against it.
var Default = seed()

// Lookup resolves name against the Default registry. An empty name
// means DefaultName. Unknown names return an invalid-input error that
// lists what is registered, so HTTP surfaces map it to a 400 with an
// actionable message.
func Lookup(name string) (Target, error) {
	if name == "" {
		name = DefaultName
	}
	t, ok := Default.Lookup(name)
	if !ok {
		return Target{}, errdefs.Invalidf("target: unknown target %q (registered: %s)",
			name, strings.Join(Default.Names(), ", "))
	}
	return t, nil
}

// ForGPU returns the registered target that pairs the named GPU
// preset with the paper's CPU on the paper's PCIe v1 bus — the
// combination the legacy -gpu flag has always selected, now with a
// registry identity so it is cacheable.
func ForGPU(gpuName string) (Target, error) {
	for _, t := range Default.List() {
		if t.GPU.Name == gpuName &&
			t.CPU.Name == cpumodel.XeonE5405().Name &&
			t.BusName == pcie.Generations()[0].Name &&
			t.Memory == pcie.Pinned {
			return t, nil
		}
	}
	names := make([]string, 0, len(gpu.Presets()))
	for _, a := range gpu.Presets() {
		names = append(names, a.Name)
	}
	return Target{}, errdefs.Invalidf("target: unknown GPU preset %q (presets: %s)",
		gpuName, strings.Join(names, ", "))
}

// gpuSlug maps the built-in GPU presets to their name fragment.
func gpuSlug(a gpu.Arch) string {
	switch a.Name {
	case gpu.QuadroFX5600().Name:
		return "fx5600"
	case gpu.TeslaC1060().Name:
		return "c1060"
	case gpu.TeslaC2050().Name:
		return "c2050"
	default:
		s := strings.ToLower(a.Name)
		s = strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				return r
			default:
				return '-'
			}
		}, s)
		return strings.Trim(s, "-")
	}
}

// busSlug maps a bus profile to its name fragment ("pcie3",
// "nvlink").
func busSlug(p pcie.Profile) string {
	if p.Gen == 0 {
		return "nvlink"
	}
	return fmt.Sprintf("pcie%d", p.Gen)
}

// seed builds the default matrix: every GPU preset × the era-matched
// PCIe generations on the paper's CPU, named "<gpu>-pcie<N>"; one
// newer-CPU variant per GPU on its era-matching bus, named
// "<gpu>-pcie<N>-x5650"; the fastest GPU preset on the modern bus
// profiles (PCIe v4/v5 and an NVLink-class link) with the newer CPU;
// and a "-pageable" host-memory variant of every row, so the pageable
// ablation is a first-class target rather than a code path.
func seed() *Registry {
	r := NewRegistry()
	profiles := pcie.Profiles()
	gens := profiles[:3]
	var pinned []Target
	for _, g := range gpu.Presets() {
		for i, gen := range gens {
			pinned = append(pinned, Target{
				Name:        fmt.Sprintf("%s-pcie%d", gpuSlug(g), i+1),
				Description: g.Name + " + " + cpumodel.XeonE5405().Name + " + " + gen.Name,
				GPU:         g,
				CPU:         cpumodel.XeonE5405(),
				Bus:         gen.Cfg,
				BusName:     gen.Name,
				BusGen:      gen.Gen,
				BusLanes:    gen.Lanes,
			})
		}
	}
	// The CPU axis: the same three GPUs against a Westmere node. Each
	// GPU rides its era-matching bus generation (G80 shipped on v1,
	// GT200 on v2, Fermi boards on v2/v3 systems).
	for i, g := range gpu.Presets() {
		gen := gens[i]
		pinned = append(pinned, Target{
			Name:        fmt.Sprintf("%s-pcie%d-x5650", gpuSlug(g), i+1),
			Description: g.Name + " + " + cpumodel.XeonX5650().Name + " + " + gen.Name,
			GPU:         g,
			CPU:         cpumodel.XeonX5650(),
			Bus:         gen.Cfg,
			BusName:     gen.Name,
			BusGen:      gen.Gen,
			BusLanes:    gen.Lanes,
		})
	}
	// The bus axis, extended past the paper's era: the fastest built-in
	// GPU on the modern link profiles, answering "how far does the
	// transfer share shrink on a current node" without touching the
	// kernel side of the comparison.
	modernGPU := gpu.Presets()[len(gpu.Presets())-1]
	for _, p := range profiles[3:] {
		pinned = append(pinned, Target{
			Name:        gpuSlug(modernGPU) + "-" + busSlug(p),
			Description: modernGPU.Name + " + " + cpumodel.XeonX5650().Name + " + " + p.Name,
			GPU:         modernGPU,
			CPU:         cpumodel.XeonX5650(),
			Bus:         p.Cfg,
			BusName:     p.Name,
			BusGen:      p.Gen,
			BusLanes:    p.Lanes,
		})
	}
	for _, t := range pinned {
		r.MustRegister(t)
		pg := t
		pg.Name = t.Name + "-pageable"
		pg.Description = t.Description + ", pageable host memory"
		pg.Memory = pcie.Pageable
		r.MustRegister(pg)
	}
	return r
}
