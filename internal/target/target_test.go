package target

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"grophecy/internal/core"
	"grophecy/internal/cpumodel"
	"grophecy/internal/errdefs"
	"grophecy/internal/gpu"
	"grophecy/internal/pcie"
)

// defaultSeed mirrors experiments.DefaultSeed without importing the
// experiments package (which higher layers build on top of target).
const defaultSeed = 20130520

func TestDefaultRegistrySeeded(t *testing.T) {
	names := Default.Names()
	if len(names) < 9 {
		t.Fatalf("default registry has %d targets, want >= 9: %v", len(names), names)
	}
	for _, want := range []string{"fx5600-pcie1", "c1060-pcie2", "c2050-pcie3", "fx5600-pcie1-x5650"} {
		if _, ok := Default.Lookup(want); !ok {
			t.Errorf("default registry missing %q", want)
		}
	}
	// Names list is sorted and matches List order.
	list := Default.List()
	if len(list) != len(names) {
		t.Fatalf("List has %d entries, Names has %d", len(list), len(names))
	}
	for i, tgt := range list {
		if tgt.Name != names[i] {
			t.Errorf("List[%d] = %q, Names[%d] = %q", i, tgt.Name, i, names[i])
		}
	}
}

// TestRegistryConsistency is the `make check` gate: every registered
// target validates, builds a machine, and calibrates the transfer
// model within a short deadline. A preset that breaks calibration
// should fail here, not in a serving daemon.
func TestRegistryConsistency(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, tgt := range Default.List() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			if err := tgt.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if err := ctx.Err(); err != nil {
				t.Fatalf("registry consistency deadline exhausted: %v", err)
			}
			m := tgt.Machine(defaultSeed)
			p, err := core.NewProjector(m)
			if err != nil {
				t.Fatalf("calibration: %v", err)
			}
			bm := p.BusModel()
			if bm.CalibrationTransfers <= 0 {
				t.Fatalf("calibrated from %d transfers", bm.CalibrationTransfers)
			}
		})
	}
}

// TestDefaultTargetMatchesNewMachine pins the compatibility contract:
// the default target's machine is component-for-component the paper's
// evaluation node, so projections through the registry are
// byte-identical to core.NewMachine ones.
func TestDefaultTargetMatchesNewMachine(t *testing.T) {
	tgt, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name != DefaultName {
		t.Fatalf("empty lookup resolved to %q, want %q", tgt.Name, DefaultName)
	}
	const seed = 12345
	a := tgt.Machine(seed)
	b := core.NewMachine(seed)
	if a.GPUArch != b.GPUArch {
		t.Error("GPU arch differs from core.NewMachine")
	}
	if a.CPUArch != b.CPUArch {
		t.Error("CPU arch differs from core.NewMachine")
	}
	if a.Bus.Config() != b.Bus.Config() {
		t.Error("bus config differs from core.NewMachine")
	}
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("dgx-h100")
	if err == nil {
		t.Fatal("unknown target accepted")
	}
	if !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Errorf("unknown target error is not ErrInvalidInput: %v", err)
	}
	if !strings.Contains(err.Error(), DefaultName) {
		t.Errorf("error %q does not list registered names", err)
	}
}

func TestRegisterRejects(t *testing.T) {
	r := NewRegistry()
	ok := Target{
		Name: "ok", Description: "d",
		GPU: gpu.QuadroFX5600(), CPU: cpumodel.XeonE5405(),
		Bus: pcie.DefaultConfig(), BusName: "PCIe v1 x16",
	}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
	cases := map[string]func(*Target){
		"empty name":    func(t *Target) { t.Name = "" },
		"uppercase":     func(t *Target) { t.Name = "Bad" },
		"spaces":        func(t *Target) { t.Name = "a b" },
		"edge dash":     func(t *Target) { t.Name = "-a" },
		"empty busname": func(t *Target) { t.BusName = "" },
		"bad gpu":       func(t *Target) { t.GPU.SMs = 0 },
		"bad cpu":       func(t *Target) { t.CPU.Clock = 0 },
		"bad bus":       func(t *Target) { t.Bus.StagingChunk = 0 },
	}
	for name, mutate := range cases {
		bad := ok
		bad.Name = "fresh-" + strings.ReplaceAll(name, " ", "-")
		mutate(&bad)
		if err := r.Register(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTargetString(t *testing.T) {
	tgt, err := Lookup(DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	s := tgt.String()
	for _, part := range []string{tgt.GPU.Name, tgt.CPU.Name, tgt.BusName} {
		if !strings.Contains(s, part) {
			t.Errorf("String() %q missing %q", s, part)
		}
	}
}

func TestForGPU(t *testing.T) {
	for _, a := range gpu.Presets() {
		tgt, err := ForGPU(a.Name)
		if err != nil {
			t.Fatalf("ForGPU(%q): %v", a.Name, err)
		}
		if tgt.GPU.Name != a.Name {
			t.Errorf("ForGPU(%q) resolved GPU %q", a.Name, tgt.GPU.Name)
		}
		if tgt.CPU.Name != cpumodel.XeonE5405().Name {
			t.Errorf("ForGPU(%q) resolved CPU %q, want the paper's", a.Name, tgt.CPU.Name)
		}
		if tgt.BusName != pcie.Generations()[0].Name {
			t.Errorf("ForGPU(%q) resolved bus %q, want PCIe v1", a.Name, tgt.BusName)
		}
	}
	_, err := ForGPU("NVIDIA H100")
	if !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Fatalf("ForGPU(unknown): err = %v, want ErrInvalidInput", err)
	}
	if !strings.Contains(err.Error(), gpu.QuadroFX5600().Name) {
		t.Errorf("unknown-GPU message does not list presets: %v", err)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister on an invalid target did not panic")
		}
	}()
	NewRegistry().MustRegister(Target{Name: "BAD NAME"})
}

func TestGPUSlugFallback(t *testing.T) {
	got := gpuSlug(gpu.Arch{Name: "ACME Hyper/9000 X"})
	if got != "acme-hyper-9000-x" {
		t.Errorf("gpuSlug fallback = %q, want %q", got, "acme-hyper-9000-x")
	}
}

// TestFingerprint pins the registry content hash's contract: stable
// across calls, sensitive to any hardware change, and identical for
// registries built from the same definitions.
func TestFingerprint(t *testing.T) {
	base := func() *Registry {
		r := NewRegistry()
		r.MustRegister(Target{
			Name: "a", Description: "d",
			GPU: gpu.QuadroFX5600(), CPU: cpumodel.XeonE5405(),
			Bus: pcie.DefaultConfig(), BusName: "PCIe v1 x16",
		})
		return r
	}
	r1, r2 := base(), base()
	fp := r1.Fingerprint()
	if fp == "" || len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}
	if r1.Fingerprint() != fp {
		t.Error("fingerprint changed between calls on the same registry")
	}
	if r2.Fingerprint() != fp {
		t.Error("identical registries fingerprint differently")
	}

	// Adding a target changes the hash.
	r2.MustRegister(Target{
		Name: "b", Description: "d",
		GPU: gpu.TeslaC2050(), CPU: cpumodel.XeonE5405(),
		Bus: pcie.DefaultConfig(), BusName: "PCIe v1 x16",
	})
	if r2.Fingerprint() == fp {
		t.Error("fingerprint ignored an added target")
	}

	// Changing a hardware parameter (same name) changes the hash.
	r3 := NewRegistry()
	g := gpu.QuadroFX5600()
	g.SMs++
	r3.MustRegister(Target{
		Name: "a", Description: "d",
		GPU: g, CPU: cpumodel.XeonE5405(),
		Bus: pcie.DefaultConfig(), BusName: "PCIe v1 x16",
	})
	if r3.Fingerprint() == fp {
		t.Error("fingerprint ignored a GPU parameter change")
	}

	if Default.Fingerprint() != Default.Fingerprint() {
		t.Error("Default registry fingerprint unstable")
	}
}
