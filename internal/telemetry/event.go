// The canonical wide event: one request-scoped bag of fields that
// handlers annotate as they learn things (run ID, workload, cache
// outcome, queue depth), emitted exactly once per request as a single
// structured log record. One wide record per request beats scattered
// log lines: every field needed to debug a request rides on one
// greppable row keyed by trace ID.
package telemetry

import (
	"context"
	"log/slog"
	"sync"
)

// Event accumulates the canonical wide event's fields. The zero
// value is not usable; NewEvent returns a ready one. A nil *Event is
// a valid no-op, so handlers annotate unconditionally.
type Event struct {
	mu   sync.Mutex
	keys []string // insertion order, for a stable record layout
	vals map[string]slog.Value
}

// NewEvent returns an empty event.
func NewEvent() *Event {
	return &Event{vals: make(map[string]slog.Value)}
}

// WithEvent installs the event in the context.
func WithEvent(ctx context.Context, e *Event) context.Context {
	return context.WithValue(ctx, eventKey, e)
}

// EventFrom returns the context's event, or nil.
func EventFrom(ctx context.Context) *Event {
	e, _ := ctx.Value(eventKey).(*Event)
	return e
}

// Set records one field, replacing any earlier value under the same
// key (insertion order is kept from the first Set).
func (e *Event) Set(key string, value any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.vals[key]; !ok {
		e.keys = append(e.keys, key)
	}
	e.vals[key] = slog.AnyValue(value)
}

// Attrs returns the accumulated fields in first-insertion order,
// ready for slog.LogAttrs.
func (e *Event) Attrs() []slog.Attr {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]slog.Attr, 0, len(e.keys))
	for _, k := range e.keys {
		out = append(out, slog.Attr{Key: k, Value: e.vals[k]})
	}
	return out
}
