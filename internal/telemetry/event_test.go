package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestEventInsertionOrderAndReplace(t *testing.T) {
	e := NewEvent()
	e.Set("trace_id", "abc")
	e.Set("tenant", "anon")
	e.Set("status", 200)
	e.Set("tenant", "team-a") // replace keeps first-insertion position

	attrs := e.Attrs()
	if len(attrs) != 3 {
		t.Fatalf("got %d attrs, want 3: %v", len(attrs), attrs)
	}
	wantKeys := []string{"trace_id", "tenant", "status"}
	for i, k := range wantKeys {
		if attrs[i].Key != k {
			t.Fatalf("attr %d key = %q, want %q (%v)", i, attrs[i].Key, k, attrs)
		}
	}
	if attrs[1].Value.String() != "team-a" {
		t.Fatalf("tenant = %q, want replaced value", attrs[1].Value)
	}
	if attrs[2].Value.Int64() != 200 {
		t.Fatalf("status = %v", attrs[2].Value)
	}
}

func TestNilEventIsSafe(t *testing.T) {
	var e *Event
	e.Set("k", "v")
	if got := e.Attrs(); got != nil {
		t.Fatalf("nil event attrs = %v", got)
	}
}

func TestEventContextRoundTrip(t *testing.T) {
	if EventFrom(context.Background()) != nil {
		t.Fatalf("empty context carries an event")
	}
	e := NewEvent()
	ctx := WithEvent(context.Background(), e)
	if EventFrom(ctx) != e {
		t.Fatalf("event not carried by context")
	}
}

func TestEventConcurrentSet(t *testing.T) {
	e := NewEvent()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				e.Set("shared", n)
				e.Set(string(rune('a'+n)), j)
			}
		}(i)
	}
	wg.Wait()
	if len(e.Attrs()) != 9 {
		t.Fatalf("got %d attrs, want 9", len(e.Attrs()))
	}
}
