// OTLP/JSON export: a tracer's span tree rendered as one
// ExportTraceServiceRequest document (resourceSpans → scopeSpans →
// spans), plus the sinks the daemon ships those documents through —
// an NDJSON append file and an asynchronous OTLP/HTTP endpoint.
package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"grophecy/internal/metrics"
)

var (
	mExports = metrics.Default.MustCounter("telemetry_export_total",
		"Trace trees handed to OTLP sinks.")
	mExportErrors = metrics.Default.MustCounter("telemetry_export_errors_total",
		"Trace exports that failed (write or POST error).")
	mExportDropped = metrics.Default.MustCounter("telemetry_export_dropped_total",
		"Trace exports dropped because a sink's queue was full.")
)

// otlpKeyValue is one attribute in OTLP/JSON shape. The pipeline
// pre-formats all attribute values as strings, so only stringValue is
// ever populated.
type otlpKeyValue struct {
	Key   string `json:"key"`
	Value struct {
		StringValue string `json:"stringValue"`
	} `json:"value"`
}

func otlpAttr(key, value string) otlpKeyValue {
	kv := otlpKeyValue{Key: key}
	kv.Value.StringValue = value
	return kv
}

// otlpSpan is one span in OTLP/JSON shape. Fixed64 nanosecond
// timestamps are encoded as decimal strings, per the OTLP JSON
// mapping of protobuf fixed64.
type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

// OTLP span kinds (enum values from the OTLP trace proto).
const (
	otlpKindInternal = 1
	otlpKindServer   = 2
)

// otlpDocument is the ExportTraceServiceRequest JSON layout.
type otlpDocument struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

// OTLP renders the tracer's tree as one OTLP/JSON document. Open
// spans are exported as ending at the current clock. A nil tracer
// returns an empty document.
func (t *Tracer) OTLP() ([]byte, error) {
	doc := otlpDocument{}
	if t != nil {
		var spans []otlpSpan
		traceID := t.traceID.String()
		t.mu.Lock()
		walkSpan(t.root, 0, func(s *Span, depth int) {
			sp := otlpSpan{
				TraceID:           traceID,
				SpanID:            s.id.String(),
				Name:              s.name,
				Kind:              otlpKindInternal,
				StartTimeUnixNano: strconv.FormatInt(s.start.UnixNano(), 10),
			}
			end := s.end
			if !s.closed {
				end = t.now()
			}
			sp.EndTimeUnixNano = strconv.FormatInt(end.UnixNano(), 10)
			switch {
			case s.parent != nil:
				sp.ParentSpanID = s.parent.id.String()
			case !t.remote.IsZero():
				sp.ParentSpanID = t.remote.String()
				sp.Kind = otlpKindServer
			default:
				sp.Kind = otlpKindServer
			}
			for _, a := range s.attrs {
				sp.Attributes = append(sp.Attributes, otlpAttr(a.Key, a.Value))
			}
			spans = append(spans, sp)
		})
		service := t.service
		t.mu.Unlock()

		doc.ResourceSpans = []otlpResourceSpans{{
			Resource: otlpResource{
				Attributes: []otlpKeyValue{otlpAttr("service.name", service)},
			},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: "grophecy/telemetry"},
				Spans: spans,
			}},
		}}
	}
	return json.Marshal(doc)
}

// Sink receives finished trace trees. Export must not block the
// request path; Close flushes and releases resources.
type Sink interface {
	Export(t *Tracer)
	Close() error
}

// FileSink appends one OTLP/JSON document per line (NDJSON) to a
// file — the simplest durable export, greppable and replayable into
// any OTLP collector.
type FileSink struct {
	mu sync.Mutex
	f  *os.File
}

// NewFileSink opens (creating or appending) the NDJSON trace file.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening OTLP file: %w", err)
	}
	return &FileSink{f: f}, nil
}

// Export appends the tracer's OTLP document as one line.
func (s *FileSink) Export(t *Tracer) {
	if s == nil || t == nil {
		return
	}
	data, err := t.OTLP()
	if err != nil {
		mExportErrors.Inc()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	data = append(data, '\n')
	if _, err := s.f.Write(data); err != nil {
		mExportErrors.Inc()
		return
	}
	mExports.Inc()
}

// Close syncs and closes the file. Further Exports are dropped.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// HTTPSink POSTs OTLP/JSON documents to an OTLP/HTTP traces endpoint
// from a background goroutine. The queue is bounded; when the
// collector cannot keep up, exports are counted as dropped rather
// than blocking or buffering without bound.
type HTTPSink struct {
	url    string
	client *http.Client
	queue  chan []byte
	done   chan struct{}
}

// NewHTTPSink starts the sink's background shipper. url should be
// the collector's traces endpoint (e.g. http://host:4318/v1/traces).
func NewHTTPSink(url string) *HTTPSink {
	s := &HTTPSink{
		url:    url,
		client: &http.Client{Timeout: 5 * time.Second},
		queue:  make(chan []byte, 64),
		done:   make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *HTTPSink) run() {
	defer close(s.done)
	for data := range s.queue {
		req, err := http.NewRequestWithContext(context.Background(),
			http.MethodPost, s.url, bytes.NewReader(data))
		if err != nil {
			mExportErrors.Inc()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.client.Do(req)
		if err != nil {
			mExportErrors.Inc()
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			mExportErrors.Inc()
			continue
		}
		mExports.Inc()
	}
}

// Export enqueues the tracer's OTLP document, dropping it when the
// queue is full.
func (s *HTTPSink) Export(t *Tracer) {
	if s == nil || t == nil {
		return
	}
	data, err := t.OTLP()
	if err != nil {
		mExportErrors.Inc()
		return
	}
	select {
	case s.queue <- data:
	default:
		mExportDropped.Inc()
	}
}

// Close drains the queue and stops the shipper.
func (s *HTTPSink) Close() error {
	close(s.queue)
	select {
	case <-s.done:
	case <-time.After(5 * time.Second):
	}
	return nil
}
