package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func buildTree(t *testing.T, opts Options) *Tracer {
	t.Helper()
	if opts.Now == nil {
		opts.Now = fakeClock(time.Unix(1700000000, 0), time.Millisecond)
	}
	tr := NewWith("svc", opts)
	ctx := With(context.Background(), tr)
	ctx1, s1 := Start(ctx, "queue.wait", Int("queue_depth", 2))
	_, s2 := Start(ctx1, "cal.compute")
	s2.End()
	s1.End()
	tr.Close()
	return tr
}

func TestOTLPShape(t *testing.T) {
	tr := buildTree(t, Options{})
	data, err := tr.OTLP()
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("OTLP output not JSON: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("document shape: %s", data)
	}
	res := doc.ResourceSpans[0]
	if len(res.Resource.Attributes) != 1 || res.Resource.Attributes[0].Key != "service.name" ||
		res.Resource.Attributes[0].Value.StringValue != "svc" {
		t.Fatalf("resource attributes: %+v", res.Resource.Attributes)
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	traceID := tr.TraceID().String()
	byName := map[string]otlpSpan{}
	for _, s := range spans {
		if s.TraceID != traceID {
			t.Fatalf("span %q trace ID %s, want %s", s.Name, s.TraceID, traceID)
		}
		if s.StartTimeUnixNano == "" || s.EndTimeUnixNano == "" {
			t.Fatalf("span %q missing timestamps", s.Name)
		}
		byName[s.Name] = s
	}
	root := byName["svc"]
	if root.Kind != otlpKindServer || root.ParentSpanID != "" {
		t.Fatalf("root span: %+v", root)
	}
	if byName["queue.wait"].ParentSpanID != root.SpanID {
		t.Fatalf("queue.wait parent = %s, want root %s", byName["queue.wait"].ParentSpanID, root.SpanID)
	}
	if byName["cal.compute"].ParentSpanID != byName["queue.wait"].SpanID {
		t.Fatalf("cal.compute parent = %s", byName["cal.compute"].ParentSpanID)
	}
	if attrs := byName["queue.wait"].Attributes; len(attrs) != 1 ||
		attrs[0].Key != "queue_depth" || attrs[0].Value.StringValue != "2" {
		t.Fatalf("queue.wait attrs: %+v", attrs)
	}
}

func TestOTLPRemoteParentOnRoot(t *testing.T) {
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	tr := buildTree(t, Options{Parent: parent})
	data, err := tr.OTLP()
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, s := range doc.ResourceSpans[0].ScopeSpans[0].Spans {
		if s.TraceID != parent.TraceID.String() {
			t.Fatalf("span %q trace ID %s, want inbound %s", s.Name, s.TraceID, parent.TraceID)
		}
		if s.Name == "svc" && s.ParentSpanID != parent.SpanID.String() {
			t.Fatalf("root parent = %s, want remote %s", s.ParentSpanID, parent.SpanID)
		}
	}
}

func TestOTLPNilTracer(t *testing.T) {
	var tr *Tracer
	data, err := tr.OTLP()
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.ResourceSpans) != 0 {
		t.Fatalf("nil tracer exported spans: %s", data)
	}
}

func TestFileSinkAppendsNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "otlp.ndjson")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := buildTree(t, Options{}), buildTree(t, Options{})
	sink.Export(a)
	sink.Export(b)
	sink.Export(nil) // dropped, not written
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sink.Export(a) // after Close: dropped, no panic

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var traceIDs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var doc otlpDocument
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line not OTLP JSON: %v", err)
		}
		traceIDs = append(traceIDs, doc.ResourceSpans[0].ScopeSpans[0].Spans[0].TraceID)
	}
	if len(traceIDs) != 2 || traceIDs[0] != a.TraceID().String() || traceIDs[1] != b.TraceID().String() {
		t.Fatalf("file trace IDs = %v, want [%s %s]", traceIDs, a.TraceID(), b.TraceID())
	}
}

func TestHTTPSinkPosts(t *testing.T) {
	got := make(chan string, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var doc otlpDocument
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			t.Errorf("bad body: %v", err)
		}
		got <- doc.ResourceSpans[0].ScopeSpans[0].Spans[0].TraceID
	}))
	defer srv.Close()

	sink := NewHTTPSink(srv.URL)
	tr := buildTree(t, Options{})
	sink.Export(tr)
	select {
	case id := <-got:
		if id != tr.TraceID().String() {
			t.Fatalf("posted trace ID %s, want %s", id, tr.TraceID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no POST received")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}
