// Package telemetry is the daemon's *wall-clock* observability layer:
// request-scoped trace trees stamped in real time, W3C traceparent
// propagation, OTLP/JSON export, and the canonical wide event.
//
// It deliberately mirrors the shape of internal/trace — nil-safe
// receivers, context propagation through With/Start, a span tree per
// tracer — but the two must never merge: internal/trace stamps
// *simulated* time and is part of the byte-deterministic modeled
// output (a given seed reproduces the same trace byte for byte),
// while this package reads the real clock and is expected to differ
// run to run. Modeled results must never consume telemetry values.
//
// The zero value of *Tracer and *Span is a valid disabled tracer:
// every method is a no-op on nil, so instrumented code (engine
// stages, the calibration pool, the snapshot store) pays only a
// context lookup when no request tracer is installed.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the 8-byte W3C parent/span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the propagated portion of a trace: the tuple a W3C
// traceparent header carries.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the sampled bit of the trace-flags field.
	Sampled bool
}

// IsValid reports whether both IDs are non-zero, the W3C validity
// rule.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// idState seeds the process-local ID generator. IDs only need to be
// unique, not cryptographically unpredictable; one crypto/rand read
// at startup plus a splitmix64 walk keeps ID generation off the
// kernel's entropy pool on the request path.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// nextID draws the next 64-bit ID via a splitmix64 step.
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], nextID())
		binary.BigEndian.PutUint64(id[8:], nextID())
	}
	return id
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], nextID())
	}
	return id
}

// Attr is one span or event attribute; values are pre-formatted
// strings, the same convention as internal/trace.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: itoa(value)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	if value {
		return Attr{Key: key, Value: "true"}
	}
	return Attr{Key: key, Value: "false"}
}

// itoa is strconv.FormatInt(v, 10) without the import weight in call
// sites that only ever format small integers.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Span is one node of a wall-clock trace tree. All methods are safe
// on a nil receiver and for concurrent use.
type Span struct {
	tr       *Tracer
	name     string
	id       SpanID
	parent   *Span
	children []*Span
	attrs    []Attr

	start  time.Time
	end    time.Time
	closed bool
}

// Tracer owns one wall-clock trace tree. A nil *Tracer is a valid
// disabled tracer. Unlike internal/trace, spans are not pooled: a
// request's tree is small (tens of spans), lives exactly as long as
// its flight-ring entry, and wall-clock traces have no determinism
// obligations worth the aliasing risk.
type Tracer struct {
	mu      sync.Mutex
	service string
	traceID TraceID
	remote  SpanID // inbound parent span, zero when the trace starts here
	root    *Span
	now     func() time.Time
}

// Options configures a tracer beyond its service name.
type Options struct {
	// Parent, when valid, continues an inbound trace: the tracer
	// adopts its trace ID and parents the root span under its span ID.
	Parent SpanContext
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// New starts a tracer with a fresh trace ID and an open root span
// named after the service.
func New(service string) *Tracer { return NewWith(service, Options{}) }

// NewWith starts a tracer, continuing Options.Parent when it is
// valid.
func NewWith(service string, opts Options) *Tracer {
	t := &Tracer{service: service, now: opts.Now}
	if t.now == nil {
		t.now = time.Now
	}
	if opts.Parent.IsValid() {
		t.traceID = opts.Parent.TraceID
		t.remote = opts.Parent.SpanID
	} else {
		t.traceID = NewTraceID()
	}
	t.root = &Span{tr: t, name: service, id: NewSpanID(), start: t.now()}
	return t
}

// Service returns the tracer's service name.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// TraceID returns the trace identifier (zero on a nil tracer).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Remote reports the inbound parent span ID and whether the trace
// was continued from a remote caller.
func (t *Tracer) Remote() (SpanID, bool) {
	if t == nil {
		return SpanID{}, false
	}
	return t.remote, !t.remote.IsZero()
}

// ServerContext returns the span context a response should advertise:
// this trace, parented at the root (server) span. The sampled bit is
// always set — the daemon records every request it serves.
func (t *Tracer) ServerContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: t.traceID, SpanID: t.root.id, Sampled: true}
}

// Close ends the root span. Call once, after the traced work.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.root.End()
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	eventKey
)

// With installs the tracer in the context.
func With(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the installed tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Current returns the innermost open span carried by the context, or
// nil.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start opens a child span of the context's current span (or of the
// root when none is set) and returns a derived context carrying it.
// With no tracer installed it returns (ctx, nil) and costs two
// context lookups.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := Current(ctx)
	if parent == nil {
		parent = t.root
	}
	s := t.startChild(parent, name, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// startChild creates the span under the tracer lock.
func (t *Tracer) startChild(parent *Span, name string, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, name: name, id: NewSpanID(), parent: parent, attrs: attrs, start: t.now()}
	parent.children = append(parent.children, s)
	return s
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span identifier (zero on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr adds or replaces one attribute.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// End closes the span at the current wall time. Ending twice is a
// no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.end = s.tr.now()
}

// Duration returns the span's wall duration; an open span extends to
// the current clock.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	end := s.end
	if !s.closed {
		end = s.tr.now()
	}
	return end.Sub(s.start)
}

// Walk visits every span depth-first in creation order, with its
// depth. The callback must not start or end spans on this tracer.
func (t *Tracer) Walk(fn func(s *Span, depth int)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	walkSpan(t.root, 0, fn)
}

func walkSpan(s *Span, depth int, fn func(*Span, int)) {
	fn(s, depth)
	for _, c := range s.children {
		walkSpan(c, depth+1, fn)
	}
}

// Durations sums span durations by name across the whole tree — the
// per-stage wall attribution the canonical wide event reports. Open
// spans extend to the current clock.
func (t *Tracer) Durations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	t.mu.Lock()
	defer t.mu.Unlock()
	walkSpan(t.root, 0, func(s *Span, _ int) {
		out[s.name] += s.durationLocked()
	})
	return out
}

// SpanCount returns the number of spans in the tree (0 on nil).
func (t *Tracer) SpanCount() int {
	n := 0
	t.Walk(func(*Span, int) { n++ })
	return n
}
