package telemetry

import (
	"context"
	"testing"
	"time"
)

// fakeClock returns a Now func advancing by step per call.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		now := t
		t = t.Add(step)
		return now
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.TraceID() != (TraceID{}) {
		t.Fatalf("nil tracer trace ID = %v", tr.TraceID())
	}
	if tr.Root() != nil || tr.Service() != "" {
		t.Fatalf("nil tracer root/service not zero")
	}
	if _, ok := tr.Remote(); ok {
		t.Fatalf("nil tracer claims a remote parent")
	}
	if sc := tr.ServerContext(); sc.IsValid() {
		t.Fatalf("nil tracer server context valid")
	}
	tr.Close()
	tr.Walk(func(*Span, int) { t.Fatalf("nil tracer walked a span") })
	if d := tr.Durations(); d != nil {
		t.Fatalf("nil tracer durations = %v", d)
	}
	if n := tr.SpanCount(); n != 0 {
		t.Fatalf("nil tracer span count = %d", n)
	}
	var s *Span
	s.End()
	s.SetAttr(String("k", "v"))
	if s.Name() != "" || s.Duration() != 0 || !s.ID().IsZero() {
		t.Fatalf("nil span not inert")
	}

	// Start with no tracer installed must return (ctx, nil).
	ctx, span := Start(context.Background(), "noop")
	if span != nil {
		t.Fatalf("Start without tracer returned a span")
	}
	if Current(ctx) != nil || FromContext(ctx) != nil {
		t.Fatalf("untraced context carries state")
	}
}

func TestStartNestingAndDurations(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tr := NewWith("svc", Options{Now: fakeClock(base, time.Millisecond)})
	ctx := With(context.Background(), tr)

	ctx1, s1 := Start(ctx, "outer", String("k", "v"))
	if s1 == nil || Current(ctx1) != s1 {
		t.Fatalf("outer span not carried by context")
	}
	_, s2 := Start(ctx1, "inner")
	s2.End()
	s1.End()
	// A sibling started from the root context parents at the root.
	_, s3 := Start(ctx, "sibling")
	s3.End()
	tr.Close()

	var names []string
	var depths []int
	tr.Walk(func(s *Span, d int) { names = append(names, s.Name()); depths = append(depths, d) })
	wantNames := []string{"svc", "outer", "inner", "sibling"}
	wantDepths := []int{0, 1, 2, 1}
	for i := range wantNames {
		if i >= len(names) || names[i] != wantNames[i] || depths[i] != wantDepths[i] {
			t.Fatalf("walk order = %v %v, want %v %v", names, depths, wantNames, wantDepths)
		}
	}

	d := tr.Durations()
	for _, name := range wantNames {
		if d[name] <= 0 {
			t.Fatalf("duration of %q = %v, want > 0", name, d[name])
		}
	}
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", tr.SpanCount())
	}
}

func TestRemoteParentAdoptsTraceID(t *testing.T) {
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	tr := NewWith("svc", Options{Parent: parent})
	if tr.TraceID() != parent.TraceID {
		t.Fatalf("trace ID %v not adopted from parent %v", tr.TraceID(), parent.TraceID)
	}
	remote, ok := tr.Remote()
	if !ok || remote != parent.SpanID {
		t.Fatalf("remote = %v %v, want %v true", remote, ok, parent.SpanID)
	}
	sc := tr.ServerContext()
	if sc.TraceID != parent.TraceID || sc.SpanID != tr.Root().ID() || !sc.Sampled {
		t.Fatalf("server context %+v does not advertise the root span", sc)
	}
}

func TestFreshTracerMakesUniqueIDs(t *testing.T) {
	a, b := New("a"), New("b")
	if a.TraceID() == b.TraceID() {
		t.Fatalf("two tracers share trace ID %v", a.TraceID())
	}
	if a.TraceID().IsZero() || a.Root().ID().IsZero() {
		t.Fatalf("fresh tracer has zero IDs")
	}
	if _, ok := a.Remote(); ok {
		t.Fatalf("fresh tracer claims a remote parent")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	tr := New("svc")
	ctx := With(context.Background(), tr)
	_, s := Start(ctx, "sp", String("k", "old"))
	s.SetAttr(String("k", "new"))
	s.SetAttr(Int("n", 7))
	s.SetAttr(Bool("b", true))
	s.End()
	got := map[string]string{}
	for _, a := range s.attrs {
		got[a.Key] = a.Value
	}
	if got["k"] != "new" || got["n"] != "7" || got["b"] != "true" {
		t.Fatalf("attrs = %v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("svc")
	ctx := With(context.Background(), tr)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				_, s := Start(ctx, "work")
				s.SetAttr(Int("j", int64(j)))
				s.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.Close()
	if n := tr.SpanCount(); n != 1+8*100 {
		t.Fatalf("span count = %d, want %d", n, 1+8*100)
	}
}
