// W3C Trace Context: parsing and rendering of the `traceparent`
// header (https://www.w3.org/TR/trace-context/), the wire format the
// daemon uses to join and continue distributed traces.
package telemetry

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// TraceparentHeader is the canonical header name (HTTP header names
// are case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a version-00 traceparent value:
// 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a traceparent header value. Per the spec it
// accepts future versions (any two lowercase hex digits except "ff")
// as long as the version-00 prefix fields are well-formed, requires
// lowercase hex throughout, and rejects all-zero trace or span IDs.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	// version(2) - traceid(32) - spanid(16) - flags(2) = 55 bytes
	// minimum; future versions may append "-extra" fields.
	if len(s) < 55 {
		return sc, fmt.Errorf("telemetry: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("telemetry: traceparent delimiters malformed")
	}
	version, traceID, spanID, flags := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isLowerHex(version) || version == "ff" {
		return sc, fmt.Errorf("telemetry: invalid traceparent version %q", version)
	}
	if version == "00" {
		if len(s) != 55 {
			return sc, fmt.Errorf("telemetry: version 00 traceparent has trailing bytes")
		}
	} else if len(s) > 55 && s[55] != '-' {
		return sc, fmt.Errorf("telemetry: traceparent trailing bytes not dash-separated")
	}
	if !isLowerHex(traceID) {
		return sc, fmt.Errorf("telemetry: trace-id not lowercase hex")
	}
	if !isLowerHex(spanID) {
		return sc, fmt.Errorf("telemetry: parent-id not lowercase hex")
	}
	if !isLowerHex(flags) {
		return sc, fmt.Errorf("telemetry: trace-flags not lowercase hex")
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(traceID)); err != nil {
		return sc, fmt.Errorf("telemetry: trace-id: %w", err)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(spanID)); err != nil {
		return sc, fmt.Errorf("telemetry: parent-id: %w", err)
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("telemetry: trace-id is all zero")
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("telemetry: parent-id is all zero")
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flags)); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: trace-flags: %w", err)
	}
	sc.Sampled = fb[0]&0x01 != 0
	return sc, nil
}

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// Extract pulls a valid span context from an inbound header set,
// reporting whether one was present and well-formed. Malformed
// headers are treated as absent, per the spec's restart rule.
func Extract(h http.Header) (SpanContext, bool) {
	v := strings.TrimSpace(h.Get(TraceparentHeader))
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	if err != nil || !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Inject writes the span context as a traceparent header. Invalid
// contexts are not written.
func Inject(h http.Header, sc SpanContext) {
	if !sc.IsValid() {
		return
	}
	h.Set(TraceparentHeader, FormatTraceparent(sc))
}
