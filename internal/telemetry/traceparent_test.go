package telemetry

import (
	"net/http"
	"strings"
	"testing"
)

const validTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentValid(t *testing.T) {
	sc, err := ParseTraceparent(validTP)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", validTP, err)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "00f067aa0ba902b7" {
		t.Fatalf("span ID = %s", sc.SpanID)
	}
	if !sc.Sampled {
		t.Fatalf("sampled bit not parsed")
	}
	if got := FormatTraceparent(sc); got != validTP {
		t.Fatalf("round trip = %q, want %q", got, validTP)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// A future version may append dash-separated fields; the 00-shaped
	// prefix must still parse.
	for _, in := range []string{
		strings.Replace(validTP, "00-", "01-", 1),
		strings.Replace(validTP, "00-", "01-", 1) + "-extrafield",
	} {
		sc, err := ParseTraceparent(in)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", in, err)
		}
		if !sc.IsValid() {
			t.Fatalf("ParseTraceparent(%q): invalid context", in)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"short":               "00-abc",
		"bad delimiters":      strings.Replace(validTP, "-", "_", 3),
		"uppercase hex":       strings.ToUpper(validTP),
		"version ff":          strings.Replace(validTP, "00-", "ff-", 1),
		"zero trace id":       "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"v00 trailing":        validTP + "-extra",
		"trailing not dashed": strings.Replace(validTP, "00-", "01-", 1) + "x",
		"non-hex trace id":    "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
		"non-hex flags":       "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
}

func TestExtractInjectRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	h := http.Header{}
	Inject(h, sc)
	got, ok := Extract(h)
	if !ok || got != sc {
		t.Fatalf("Extract after Inject = %+v %v, want %+v", got, ok, sc)
	}

	// Malformed and absent headers extract as absent.
	for _, v := range []string{"", "garbage", strings.ToUpper(validTP)} {
		h := http.Header{}
		if v != "" {
			h.Set(TraceparentHeader, v)
		}
		if _, ok := Extract(h); ok {
			t.Errorf("Extract(%q) accepted", v)
		}
	}

	// Invalid contexts are not injected.
	h = http.Header{}
	Inject(h, SpanContext{})
	if h.Get(TraceparentHeader) != "" {
		t.Fatalf("Inject wrote an invalid context")
	}
}

func TestFormatTraceparentUnsampled(t *testing.T) {
	sc, err := ParseTraceparent(strings.TrimSuffix(validTP, "01") + "00")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sampled {
		t.Fatalf("flags 00 parsed as sampled")
	}
	if got := FormatTraceparent(sc); !strings.HasSuffix(got, "-00") {
		t.Fatalf("unsampled format = %q", got)
	}
}

// FuzzTraceparent asserts the parser never panics, and that every
// accepted value survives a format/reparse round trip.
func FuzzTraceparent(f *testing.F) {
	f.Add(validTP)
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add(strings.ToUpper(validTP))
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseTraceparent(in)
		if err != nil {
			return
		}
		if !sc.IsValid() {
			t.Fatalf("accepted invalid context from %q", in)
		}
		again, err := ParseTraceparent(FormatTraceparent(sc))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", in, err)
		}
		if again != sc {
			t.Fatalf("round trip of %q: %+v != %+v", in, again, sc)
		}
	})
}
