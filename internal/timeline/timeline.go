// Package timeline reconstructs and renders the execution timeline a
// GROPHECY++ report implies: uploads, the per-iteration kernel
// launches, and downloads, laid out as an ASCII Gantt chart.
//
// The paper's execution model is strictly sequential (synchronous
// cudaMemcpy, one kernel at a time, §II-B/IV-A), so the timeline is a
// single track; the value is seeing *where the time goes* — for most
// workloads the bars make the two-thirds transfer share viscerally
// obvious.
package timeline

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"grophecy/internal/core"
	"grophecy/internal/trace"
	"grophecy/internal/units"
)

// EventKind classifies a timeline entry.
type EventKind int

const (
	// Upload is a host-to-device transfer.
	Upload EventKind = iota
	// Kernel is one kernel invocation (aggregated across iterations
	// in the rendering).
	Kernel
	// Download is a device-to-host transfer.
	Download
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Upload:
		return "upload"
	case Kernel:
		return "kernel"
	case Download:
		return "download"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timeline entry, with measured times. Its interval is
// trace.Interval — the single home of simulated-time interval
// arithmetic — so Start, Duration, and End() come from there.
type Event struct {
	Kind  EventKind
	Label string
	// Interval is the event's [Start, Start+Duration) window in
	// seconds from the beginning of the offloaded region.
	trace.Interval
}

// FromReport reconstructs the sequential timeline of a report:
// uploads in plan order, then Iterations rounds of the kernel list,
// then downloads. Kernel durations use the per-invocation measured
// means; transfers use their measured means.
//
// The slice is allocated at its exact final size. Callers on a hot
// rendering path can avoid even that allocation with AppendFromReport
// and the package's event-slice pool (AcquireEvents/ReleaseEvents).
func FromReport(r core.Report) []Event {
	return AppendFromReport(make([]Event, 0, eventCount(r)), r)
}

// eventCount is the exact number of timeline events a report implies.
func eventCount(r core.Report) int {
	return len(r.Transfers) + r.Iterations*len(r.Kernels)
}

// AppendFromReport appends the report's timeline events to dst and
// returns the extended slice, allocating only if dst lacks capacity.
func AppendFromReport(dst []Event, r core.Report) []Event {
	events := dst
	t := 0.0
	add := func(kind EventKind, label string, d float64) {
		events = append(events, Event{Kind: kind, Label: label,
			Interval: trace.Interval{Start: t, Duration: d}})
		t += d
	}
	for _, tr := range r.Transfers {
		if tr.Transfer.Dir.String() == "upload" {
			add(Upload, tr.Transfer.Array().Name, tr.Measured)
		}
	}
	for it := 0; it < r.Iterations; it++ {
		for _, k := range r.Kernels {
			label := k.Kernel
			if r.Iterations > 1 {
				label = fmt.Sprintf("%s#%d", k.Kernel, it+1)
			}
			add(Kernel, label, k.Measured)
		}
	}
	for _, tr := range r.Transfers {
		if tr.Transfer.Dir.String() == "download" {
			add(Download, tr.Transfer.Array().Name, tr.Measured)
		}
	}
	return events
}

// eventSlicePool recycles event slices across renderings; see
// AcquireEvents.
var eventSlicePool = sync.Pool{New: func() any {
	s := make([]Event, 0, 64)
	return &s
}}

// AcquireEvents returns an empty event slice from the package pool
// with capacity for at least n events. Pass it to AppendFromReport,
// and hand it back with ReleaseEvents when done — after which the
// caller must not touch the slice again.
func AcquireEvents(n int) *[]Event {
	sp := eventSlicePool.Get().(*[]Event)
	if cap(*sp) < n {
		*sp = make([]Event, 0, n)
	}
	*sp = (*sp)[:0]
	return sp
}

// ReleaseEvents returns a slice obtained from AcquireEvents to the
// pool.
func ReleaseEvents(sp *[]Event) {
	if sp == nil {
		return
	}
	*sp = (*sp)[:0]
	eventSlicePool.Put(sp)
}

// Chart renders a report's timeline directly, routing the event slice
// through the package pool so repeated renderings (the daemon's
// steady state) allocate no per-call event storage.
func Chart(r core.Report, width int) (string, error) {
	sp := AcquireEvents(eventCount(r))
	defer ReleaseEvents(sp)
	*sp = AppendFromReport(*sp, r)
	return Render(*sp, width)
}

// markers maps event kinds to bar characters.
var markers = map[EventKind]rune{
	Upload:   '>',
	Kernel:   '#',
	Download: '<',
}

// Render draws the timeline as an ASCII Gantt chart of the given
// width. Events shorter than one column still get one marker, so
// nothing disappears; consecutive kernel iterations collapse into one
// row when there are more than maxRows events.
func Render(events []Event, width int) (string, error) {
	if width < 20 {
		return "", fmt.Errorf("timeline: width %d too small", width)
	}
	if len(events) == 0 {
		return "", fmt.Errorf("timeline: no events")
	}
	events = coalesce(events, 24)

	total := events[len(events)-1].End()
	if total <= 0 {
		return "", fmt.Errorf("timeline: zero total duration")
	}
	scale := float64(width) / total

	labelW := 0
	for _, e := range events {
		if len(e.Label) > labelW {
			labelW = len(e.Label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "timeline (total %s; '>' upload, '#' kernel, '<' download)\n",
		units.FormatSeconds(total))
	for _, e := range events {
		startCol := int(e.Start * scale)
		barLen := int(e.Duration * scale)
		if barLen < 1 {
			barLen = 1
		}
		if startCol+barLen > width {
			barLen = width - startCol
			if barLen < 1 {
				startCol, barLen = width-1, 1
			}
		}
		fmt.Fprintf(&b, "%-*s |%s%s%s| %s\n",
			labelW, e.Label,
			strings.Repeat(" ", startCol),
			strings.Repeat(string(markers[e.Kind]), barLen),
			strings.Repeat(" ", width-startCol-barLen),
			units.FormatSeconds(e.Duration))
	}
	return b.String(), nil
}

// coalesce folds long runs of kernel iterations into aggregate rows
// so the chart stays readable.
func coalesce(events []Event, maxRows int) []Event {
	if len(events) <= maxRows {
		return events
	}
	// Separate the phases.
	var ups, kernels, downs []Event
	for _, e := range events {
		switch e.Kind {
		case Upload:
			ups = append(ups, e)
		case Kernel:
			kernels = append(kernels, e)
		default:
			downs = append(downs, e)
		}
	}
	if len(kernels) == 0 {
		return events
	}
	agg := Event{
		Kind:  Kernel,
		Label: fmt.Sprintf("kernels x%d", len(kernels)),
		Interval: trace.Interval{
			Start:    kernels[0].Start,
			Duration: kernels[len(kernels)-1].End() - kernels[0].Start,
		},
	}
	out := append(append([]Event{}, ups...), agg)
	return append(out, downs...)
}

// Summary aggregates the timeline by kind.
type Summary struct {
	UploadTime   float64
	KernelTime   float64
	DownloadTime float64
}

// Summarize totals the event durations by kind.
func Summarize(events []Event) Summary {
	var s Summary
	for _, e := range events {
		switch e.Kind {
		case Upload:
			s.UploadTime += e.Duration
		case Kernel:
			s.KernelTime += e.Duration
		case Download:
			s.DownloadTime += e.Duration
		}
	}
	return s
}

// Total returns the summed duration.
func (s Summary) Total() float64 { return s.UploadTime + s.KernelTime + s.DownloadTime }

// ToTrace replays a sequential timeline into a trace tree: one child
// span per event under a "timeline" root, with the simulated clock
// advanced so every span reproduces its event's interval exactly.
// Gaps between events show up as unspanned root time; overlapping
// events are an error (the paper's execution model is sequential).
func ToTrace(events []Event) (*trace.Tracer, error) {
	t := trace.New("timeline")
	ctx := trace.With(context.Background(), t)
	for _, e := range events {
		now := t.Now()
		if e.Start < now-1e-12*(1+now) {
			return nil, fmt.Errorf("timeline: event %q starts at %g, before the previous event ends (%g)",
				e.Label, e.Start, now)
		}
		t.Root().Advance(e.Start - now)
		_, sp := trace.Start(ctx, e.Label, trace.String("kind", e.Kind.String()))
		sp.Advance(e.Duration)
		sp.End()
	}
	t.Close()
	return t, nil
}
