package timeline

import (
	"math"
	"strings"
	"testing"

	"grophecy/internal/bench"
	"grophecy/internal/core"
	"grophecy/internal/trace"
)

func hotspotReport(t *testing.T, iters int) core.Report {
	t.Helper()
	w, err := bench.HotSpot("512 x 512")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProjector(core.NewMachine(21))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Evaluate(w.WithIterations(iters))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFromReportStructure(t *testing.T) {
	rep := hotspotReport(t, 1)
	events := FromReport(rep)
	// 2 uploads + 1 kernel + 1 download.
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	wantKinds := []EventKind{Upload, Upload, Kernel, Download}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.Duration <= 0 {
			t.Errorf("event %d duration %v", i, e.Duration)
		}
	}
	// Strictly sequential, gap-free.
	for i := 1; i < len(events); i++ {
		if math.Abs(events[i].Start-events[i-1].End()) > 1e-12 {
			t.Errorf("gap between events %d and %d", i-1, i)
		}
	}
	// The timeline's total equals the report's measured GPU time.
	total := events[len(events)-1].End()
	if math.Abs(total-rep.MeasTotalGPU())/rep.MeasTotalGPU() > 1e-9 {
		t.Errorf("timeline total %v != report total %v", total, rep.MeasTotalGPU())
	}
}

func TestFromReportIterations(t *testing.T) {
	rep := hotspotReport(t, 5)
	events := FromReport(rep)
	kernels := 0
	for _, e := range events {
		if e.Kind == Kernel {
			kernels++
		}
	}
	if kernels != 5 {
		t.Errorf("kernel events = %d, want 5", kernels)
	}
	s := Summarize(events)
	if math.Abs(s.KernelTime-rep.MeasKernelTime)/rep.MeasKernelTime > 1e-9 {
		t.Errorf("kernel summary %v != report %v", s.KernelTime, rep.MeasKernelTime)
	}
	if math.Abs(s.Total()-rep.MeasTotalGPU())/rep.MeasTotalGPU() > 1e-9 {
		t.Errorf("summary total %v != report %v", s.Total(), rep.MeasTotalGPU())
	}
}

func TestRenderGantt(t *testing.T) {
	rep := hotspotReport(t, 1)
	out, err := Render(FromReport(rep), 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"timeline (total", ">", "#", "<", "temp", "power"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The transfer bars should dominate the kernel bar (Table I).
	lines := strings.Split(out, "\n")
	countRun := func(sub string, marker rune) int {
		for _, l := range lines {
			if strings.Contains(l, sub) {
				return strings.Count(l, string(marker))
			}
		}
		return -1
	}
	kernelBar := countRun("hotspot_stencil", '#')
	uploadBar := countRun("temp ", '>')
	if kernelBar < 0 || uploadBar < 0 {
		t.Fatalf("bars not found:\n%s", out)
	}
	if uploadBar <= kernelBar {
		t.Errorf("upload bar (%d) should exceed kernel bar (%d) for HotSpot 512",
			uploadBar, kernelBar)
	}
}

func TestRenderCoalescesManyIterations(t *testing.T) {
	rep := hotspotReport(t, 100)
	out, err := Render(FromReport(rep), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kernels x100") {
		t.Errorf("100 iterations not coalesced:\n%s", out)
	}
	if len(strings.Split(out, "\n")) > 10 {
		t.Error("coalesced chart still too tall")
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(nil, 60); err == nil {
		t.Error("empty events accepted")
	}
	rep := hotspotReport(t, 1)
	if _, err := Render(FromReport(rep), 5); err == nil {
		t.Error("tiny width accepted")
	}
}

func TestToTraceRoundTrip(t *testing.T) {
	rep := hotspotReport(t, 3)
	events := FromReport(rep)
	tr, err := ToTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("replayed trace ill-formed: %v", err)
	}
	// Every event's interval must be reproduced exactly by its span.
	children := tr.Root().Children()
	if len(children) != len(events) {
		t.Fatalf("spans = %d, want %d", len(children), len(events))
	}
	for i, sp := range children {
		iv := sp.Interval()
		if math.Abs(iv.Start-events[i].Start) > 1e-12 ||
			math.Abs(iv.Duration-events[i].Duration) > 1e-12 {
			t.Errorf("span %d interval [%g, %g] != event [%g, %g]",
				i, iv.Start, iv.Duration, events[i].Start, events[i].Duration)
		}
		if sp.Name() != events[i].Label {
			t.Errorf("span %d name %q != label %q", i, sp.Name(), events[i].Label)
		}
	}
	// The root span covers the full measured GPU time.
	rootDur := tr.Root().Interval().Duration
	if math.Abs(rootDur-rep.MeasTotalGPU())/rep.MeasTotalGPU() > 1e-9 {
		t.Errorf("root duration %v != report total %v", rootDur, rep.MeasTotalGPU())
	}
}

func TestToTraceRejectsOverlap(t *testing.T) {
	events := []Event{
		{Kind: Kernel, Label: "a", Interval: trace.Interval{Start: 0, Duration: 2}},
		{Kind: Kernel, Label: "b", Interval: trace.Interval{Start: 1, Duration: 2}},
	}
	if _, err := ToTrace(events); err == nil {
		t.Error("overlapping events accepted")
	}
}

func TestToTraceAllowsGaps(t *testing.T) {
	events := []Event{
		{Kind: Upload, Label: "a", Interval: trace.Interval{Start: 0, Duration: 1}},
		{Kind: Kernel, Label: "b", Interval: trace.Interval{Start: 3, Duration: 1}},
	}
	tr, err := ToTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Root().Interval().Duration; math.Abs(got-4) > 1e-12 {
		t.Errorf("root duration %v, want 4 (gap preserved)", got)
	}
}

func TestEventKindString(t *testing.T) {
	if Upload.String() != "upload" || Kernel.String() != "kernel" || Download.String() != "download" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(EventKind(9).String(), "9") {
		t.Error("fallback string wrong")
	}
}
