// The chaos/persistence scenario `make smoke-chaos` runs: the real
// grophecyd binary (race detector on) booted under an adversarial
// chaos plan — injected calibration latency and transient errors —
// with the snapshot store enabled. The daemon must become ready, shed
// correctly while saturated, and serve byte-identical reports across
// retries; after a SIGKILL a second daemon on the same snapshot
// directory must warm-start — zero new calibrations, the same report
// bytes — and after deliberate snapshot corruption a third daemon
// must quarantine the damage and still come up. This is the
// kill-and-restart proof the httptest suite cannot give: a genuinely
// separate process recovering from the first one's disk state.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// chaosPlan is fixed-seed so every run draws the same fault schedule:
// roughly half the calibration attempts are delayed 15ms, 45% fail
// transiently. With -cal-retries 8 a whole flight still fails only
// ~0.45^8 ≈ 0.2% of the time.
const chaosPlan = "cal-err=0.45,cal-latency=15ms:0.5,seed=4242"

func runChaos() error {
	root, err := repoRoot()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "grophecyd-chaos")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "grophecyd")
	snapDir := filepath.Join(dir, "snapshots")
	if err := os.Mkdir(snapDir, 0o755); err != nil {
		return err
	}

	build := exec.Command("go", "build", "-race", "-o", bin, "./cmd/grophecyd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building grophecyd -race: %v\n%s", err, out)
	}

	src, err := os.ReadFile(filepath.Join(root, "skeletons", "hotspot.sk"))
	if err != nil {
		return err
	}

	// Daemon A: adversarial chaos, tight admission, persistence on.
	a, baseA, err := startChaosDaemon(root, bin,
		"-chaos", chaosPlan, "-cal-retries", "8",
		"-snapshot-dir", snapDir,
		"-max-inflight", "1", "-max-queue", "0", "-queue-wait", "300ms")
	if err != nil {
		return err
	}
	defer a.Process.Kill()
	if err := waitReady(baseA, 30*time.Second); err != nil {
		return fmt.Errorf("daemon did not become ready under chaos: %w", err)
	}
	fmt.Println("smoke-chaos: daemon ready under plan", chaosPlan)

	reference, err := projectRaw(baseA+"/project", string(src))
	if err != nil {
		return fmt.Errorf("projecting under chaos: %w", err)
	}
	repeat, err := projectRaw(baseA+"/project", string(src))
	if err != nil {
		return err
	}
	if !bytes.Equal(repeat, reference) {
		return errors.New("repeat projection under chaos is not byte-identical")
	}
	fmt.Println("smoke-chaos: projections under chaos are byte-identical")

	if err := checkSheddingChaos(baseA, string(src)); err != nil {
		return err
	}
	fmt.Println("smoke-chaos: saturated daemon shed with 429 + Retry-After and recovered")

	dump, err := metricsDump(baseA)
	if err != nil {
		return err
	}
	retries, err := metricValue(dump, "engine_cal_retries_total")
	if err != nil {
		return err
	}
	if retries < 1 {
		return fmt.Errorf("engine_cal_retries_total = %g under cal-err=0.45, want >= 1", retries)
	}
	fmt.Printf("smoke-chaos: %g transient calibration attempts retried\n", retries)

	// Hard kill: no drain, no final snapshot. The write-through must
	// already have every completed calibration on disk.
	if err := a.Process.Kill(); err != nil {
		return err
	}
	a.Wait()
	snaps, err := filepath.Glob(filepath.Join(snapDir, "*.snap"))
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return errors.New("no snapshot files on disk after SIGKILL (write-through missing)")
	}
	fmt.Printf("smoke-chaos: SIGKILL left %d snapshot files\n", len(snaps))

	// Daemon B: clean config, same snapshot directory. It must
	// warm-start — ready without a single new calibration — and serve
	// the reference bytes.
	b, baseB, err := startChaosDaemon(root, bin, "-snapshot-dir", snapDir)
	if err != nil {
		return err
	}
	defer b.Process.Kill()
	if err := waitReady(baseB, 15*time.Second); err != nil {
		return err
	}
	warm, err := projectRaw(baseB+"/project", string(src))
	if err != nil {
		return err
	}
	if !bytes.Equal(warm, reference) {
		return errors.New("warm-started report differs from the pre-kill reference")
	}
	dump, err = metricsDump(baseB)
	if err != nil {
		return err
	}
	misses, err := metricValue(dump, "engine_cache_misses_total")
	if err != nil {
		return err
	}
	if misses != 0 {
		return fmt.Errorf("warm-started daemon ran %g calibrations, want 0", misses)
	}
	info, err := buildInfoDoc(baseB)
	if err != nil {
		return err
	}
	snapSection, ok := info["snapshot"].(map[string]any)
	if !ok {
		return errors.New("/buildinfo lacks the snapshot section on a warm-started daemon")
	}
	if n, _ := snapSection["entries"].(float64); n < 1 {
		return fmt.Errorf("/buildinfo snapshot entries = %v, want >= 1", snapSection["entries"])
	}
	fmt.Printf("smoke-chaos: warm start served identical bytes with 0 calibrations (%v entries loaded)\n",
		snapSection["entries"])

	// Graceful exit for B.
	if err := b.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("warm daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return errors.New("warm daemon did not exit within 15s of SIGTERM")
	}

	// Corrupt one snapshot file in place; daemon C must quarantine it
	// and still come up ready.
	victim := snaps[0]
	if err := os.WriteFile(victim, []byte("flipped bits, not a snapshot"), 0o644); err != nil {
		return err
	}
	c, baseC, err := startChaosDaemon(root, bin, "-snapshot-dir", snapDir)
	if err != nil {
		return err
	}
	defer c.Process.Kill()
	if err := waitReady(baseC, 15*time.Second); err != nil {
		return fmt.Errorf("daemon with a corrupt snapshot never became ready: %w", err)
	}
	q, err := filepath.Glob(filepath.Join(snapDir, "*.quarantined"))
	if err != nil {
		return err
	}
	if len(q) < 1 {
		return errors.New("corrupt snapshot file was not quarantined on disk")
	}
	resp, err := http.Get(baseC + "/readyz")
	if err != nil {
		return err
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(rb), "quarantined") {
		return fmt.Errorf("/readyz does not report the quarantine: %q", rb)
	}
	fmt.Println("smoke-chaos: corrupt snapshot quarantined, daemon still ready")
	return nil
}

// startChaosDaemon launches the built binary on an ephemeral port
// with the given extra flags and returns the process and base URL.
func startChaosDaemon(root, bin string, extra ...string) (*exec.Cmd, string, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-log-format", "json"}, extra...)
	daemon := exec.Command(bin, args...)
	daemon.Dir = root
	daemon.Stderr = os.Stderr
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := daemon.Start(); err != nil {
		return nil, "", err
	}
	base, err := listenURL(stdout)
	if err != nil {
		daemon.Process.Kill()
		return nil, "", err
	}
	return daemon, base, nil
}

// checkSheddingChaos is the chaos-tolerant version of checkShedding:
// a long batch holds the single worker slot while probes look for the
// 429, but under cal-err a few batch jobs may legitimately exhaust
// their retries, so the batch only has to mostly succeed.
func checkSheddingChaos(base, src string) error {
	const batchJobs = 48
	jobs := make([]map[string]any, batchJobs)
	for i := range jobs {
		jobs[i] = map[string]any{"workload": "CFD", "size": "97K", "seed": 2000 + i}
	}
	body, err := json.Marshal(jobs)
	if err != nil {
		return err
	}

	batchDone := make(chan error, 1)
	go func() {
		for {
			resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				batchDone <- err
				return
			}
			respBody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				batchDone <- err
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				continue // a probe won the slot first; re-submit
			}
			if resp.StatusCode != http.StatusOK {
				batchDone <- fmt.Errorf("chaos batch: status %d\n%.300s", resp.StatusCode, respBody)
				return
			}
			var doc struct {
				Succeeded int `json:"succeeded"`
			}
			if err := json.Unmarshal(respBody, &doc); err != nil {
				batchDone <- err
				return
			}
			if doc.Succeeded < batchJobs*9/10 {
				batchDone <- fmt.Errorf("chaos batch: only %d of %d jobs succeeded", doc.Succeeded, batchJobs)
				return
			}
			batchDone <- nil
			return
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		resp, err := http.Post(base+"/project", "text/plain", strings.NewReader(src))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				return errors.New("chaos 429 missing the Retry-After header")
			}
			shed = true
			break
		}
	}
	if !shed {
		return errors.New("no request shed while the chaos batch held the worker slot")
	}

	if err := <-batchDone; err != nil {
		return err
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/readyz")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("/readyz did not recover after the chaos batch drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// buildInfoDoc fetches and decodes GET /buildinfo.
func buildInfoDoc(base string) (map[string]any, error) {
	resp, err := http.Get(base + "/buildinfo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("/buildinfo is not JSON: %v", err)
	}
	return doc, nil
}
