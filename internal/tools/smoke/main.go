// Command smoke is the end-to-end smoke test `make smoke` runs: it
// builds the real grophecyd binary, starts it on an ephemeral port,
// drives one projection through the HTTP surface, checks the request
// metrics moved, and verifies the daemon drains cleanly on SIGTERM.
// Unlike the httptest suite this exercises the actual process
// lifecycle — flag parsing, the listener, signal handling, exit code.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run() error {
	root, err := repoRoot()
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "grophecyd-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "grophecyd")

	build := exec.Command("go", "build", "-o", bin, "./cmd/grophecyd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building grophecyd: %v\n%s", err, out)
	}

	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-log-format", "json")
	daemon.Dir = root
	daemon.Stderr = os.Stderr
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return err
	}
	// Whatever happens below, don't leave the daemon running.
	defer daemon.Process.Kill()

	base, err := listenURL(stdout)
	if err != nil {
		return err
	}
	fmt.Println("smoke: daemon up at", base)

	if err := waitReady(base, 10*time.Second); err != nil {
		return err
	}

	src, err := os.ReadFile(filepath.Join(root, "skeletons", "hotspot.sk"))
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/project", "text/plain", strings.NewReader(string(src)))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /project: status %d\n%s", resp.StatusCode, body)
	}
	var rep struct {
		Derived struct {
			SpeedupFull float64 `json:"speedupFull"`
		} `json:"derived"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("report is not JSON: %v", err)
	}
	if rep.Derived.SpeedupFull <= 0 {
		return fmt.Errorf("speedupFull = %v, want > 0", rep.Derived.SpeedupFull)
	}
	fmt.Printf("smoke: projected hotspot.sk, speedup %.2fx (run %s)\n",
		rep.Derived.SpeedupFull, resp.Header.Get("X-Run-Id"))

	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	dump, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		return err
	}
	if !strings.Contains(string(dump), "grophecyd_requests_total 1") {
		return fmt.Errorf("/metrics missing grophecyd_requests_total 1")
	}

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return errors.New("daemon did not exit within 15s of SIGTERM")
	}
	fmt.Println("smoke: daemon drained and exited 0")
	return nil
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("go.mod not found above working directory")
		}
		dir = parent
	}
}

// listenURL reads the daemon's one stdout line
// ("grophecyd: listening on http://HOST:PORT") and returns the URL.
func listenURL(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		if sc.Scan() {
			linec <- sc.Text()
			return
		}
		errc <- fmt.Errorf("daemon exited before announcing its address (%v)", sc.Err())
	}()
	select {
	case line := <-linec:
		i := strings.Index(line, "http://")
		if i < 0 {
			return "", fmt.Errorf("unexpected announce line %q", line)
		}
		return strings.TrimSpace(line[i:]), nil
	case err := <-errc:
		return "", err
	case <-time.After(10 * time.Second):
		return "", errors.New("daemon did not announce its address within 10s")
	}
}

// waitReady polls /readyz until the calibration probe has flipped it.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not ready within %v", timeout)
}
