// Command smoke is the end-to-end smoke test `make smoke` runs: it
// builds the real grophecyd binary (race detector on), starts it on
// an ephemeral port, drives projections through the HTTP surface —
// the target registry (GET /targets, ?target=), the calibration
// cache (repeat same-target requests must hit; a 1-entry cache must
// evict), the batch endpoint (byte-identical to /project; a
// dependency chain must stream NDJSON rows parents-first), admission
// control (a held worker slot must shed concurrent requests with 429
// + Retry-After and flip /readyz), and the wall-clock telemetry
// spine (an inbound traceparent must round-trip to the response
// header, the OTLP file sink, and /runs/{id}/walltrace; /statusz
// must render; the latency histogram must carry a trace-ID exemplar;
// and the canonical wide event must land in the logs) — checks the
// request metrics moved, and verifies the daemon drains cleanly on
// SIGTERM. Unlike the httptest suite this exercises the actual
// process lifecycle — flag parsing, the listener, signal handling,
// exit code.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	chaosMode := flag.Bool("chaos", false,
		"run the chaos/persistence scenario (chaos.go) instead of the standard smoke")
	flag.Parse()
	if *chaosMode {
		if err := runChaos(); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-chaos: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-chaos: OK")
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: OK")
}

func run() error {
	root, err := repoRoot()
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "grophecyd-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "grophecyd")

	build := exec.Command("go", "build", "-race", "-o", bin, "./cmd/grophecyd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building grophecyd: %v\n%s", err, out)
	}

	// A deliberately tight serving configuration: one worker slot, no
	// wait queue (any concurrent request sheds), a single-entry
	// calibration cache (any second target evicts the first), the
	// OTLP file sink on so the telemetry export path runs for real,
	// and the snapshot store on so the warm-restart phase at the end
	// has persisted fits to recover.
	otlpPath := filepath.Join(dir, "otlp.ndjson")
	logPath := filepath.Join(dir, "daemon.log")
	snapDir := filepath.Join(dir, "snapshots")
	if err := os.Mkdir(snapDir, 0o755); err != nil {
		return err
	}
	logFile, err := os.Create(logPath)
	if err != nil {
		return err
	}
	defer logFile.Close()
	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-log-format", "json",
		"-max-inflight", "1", "-max-queue", "0", "-queue-wait", "300ms",
		"-cache-entries", "1", "-otlp-file", otlpPath, "-snapshot-dir", snapDir)
	daemon.Dir = root
	// Tee the structured logs: visible in the smoke output, and
	// greppable afterwards for the canonical wide event.
	daemon.Stderr = io.MultiWriter(os.Stderr, logFile)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return err
	}
	// Whatever happens below, don't leave the daemon running.
	defer daemon.Process.Kill()

	base, err := listenURL(stdout)
	if err != nil {
		return err
	}
	fmt.Println("smoke: daemon up at", base)

	if err := waitReady(base, 10*time.Second); err != nil {
		return err
	}

	src, err := os.ReadFile(filepath.Join(root, "skeletons", "hotspot.sk"))
	if err != nil {
		return err
	}
	speedup, runID, err := project(base+"/project", string(src))
	if err != nil {
		return err
	}
	fmt.Printf("smoke: projected hotspot.sk, speedup %.2fx (run %s)\n", speedup, runID)

	// The target registry surface: /targets lists registered hardware,
	// and ?target= projects on a non-default node.
	tgtResp, err := http.Get(base + "/targets")
	if err != nil {
		return err
	}
	tgtBody, err := io.ReadAll(tgtResp.Body)
	tgtResp.Body.Close()
	if err != nil {
		return err
	}
	var targets struct {
		Default string `json:"default"`
		Targets []struct {
			Name string `json:"name"`
		} `json:"targets"`
	}
	if err := json.Unmarshal(tgtBody, &targets); err != nil {
		return fmt.Errorf("GET /targets is not JSON: %v", err)
	}
	if len(targets.Targets) < 2 {
		return fmt.Errorf("GET /targets lists %d targets, want at least 2", len(targets.Targets))
	}
	var other string
	for _, t := range targets.Targets {
		if t.Name != targets.Default {
			other = t.Name
			break
		}
	}
	fmt.Printf("smoke: %d targets registered (default %s), projecting on %s\n",
		len(targets.Targets), targets.Default, other)

	otherSpeedup, _, err := project(base+"/project?target="+other, string(src))
	if err != nil {
		return fmt.Errorf("non-default target %s: %w", other, err)
	}
	if otherSpeedup == speedup {
		return fmt.Errorf("target %s projected the same speedup as the default node (%.4fx)",
			other, speedup)
	}
	// The repeat request must reuse the cached calibration.
	if _, _, err := project(base+"/project?target="+other, string(src)); err != nil {
		return err
	}

	// The prediction-backend surface: GET /backends lists the
	// registry, and ?backend=fitted projects through the
	// hardware-fitted model. The fitted calibration is write-through
	// persisted like any other, which the restart phase below relies
	// on.
	fittedRef, err := checkBackends(base, string(src))
	if err != nil {
		return err
	}
	fmt.Println("smoke: /backends listed the registry, ?backend=fitted projected deterministically")

	// POST /batch: a mixed batch whose skeleton job must return the
	// exact bytes a single POST /project returns.
	singleBody, err := projectRaw(base+"/project", string(src))
	if err != nil {
		return err
	}
	if err := checkBatch(base, string(src), singleBody); err != nil {
		return err
	}
	fmt.Println("smoke: /batch reports byte-identical to /project")

	// The dependency-aware batch path: a three-job chain streamed as
	// NDJSON must deliver parents before children with a summary line.
	if err := checkDAGBatch(base, string(src)); err != nil {
		return err
	}
	fmt.Println("smoke: /batch DAG streamed rows in dependency order")

	// Admission control: while a large batch holds the single worker
	// slot, concurrent /project requests must shed with 429 +
	// Retry-After and /readyz must report saturation.
	if err := checkShedding(base, string(src)); err != nil {
		return err
	}
	fmt.Println("smoke: saturated daemon shed load with 429 + Retry-After")

	dump, err := metricsDump(base)
	if err != nil {
		return err
	}
	requests, err := metricValue(dump, "grophecyd_requests_total")
	if err != nil {
		return err
	}
	if requests < 7 {
		return fmt.Errorf("grophecyd_requests_total = %g, want >= 7", requests)
	}
	hits, err := metricValue(dump, "engine_cache_hits_total")
	if err != nil {
		return err
	}
	misses, err := metricValue(dump, "engine_cache_misses_total")
	if err != nil {
		return err
	}
	if hits < 1 {
		return fmt.Errorf("engine_cache_hits_total = %g, want >= 1 (repeat same-target requests must skip recalibration)", hits)
	}
	evictions, err := metricValue(dump, "engine_cache_evictions_total")
	if err != nil {
		return err
	}
	if evictions < 1 {
		return fmt.Errorf("engine_cache_evictions_total = %g, want >= 1 (a 1-entry cache serving 2 targets must evict)", evictions)
	}
	fmt.Printf("smoke: calibration cache reused (%g hits, %g misses, %g evictions)\n", hits, misses, evictions)
	shed, err := metricValue(dump, "grophecyd_shed_total")
	if err != nil {
		return err
	}
	if shed < 1 {
		return fmt.Errorf("grophecyd_shed_total = %g, want >= 1", shed)
	}
	for _, name := range []string{"grophecyd_queue_depth", "grophecyd_queue_wait_seconds_count", "grophecyd_batch_jobs_total"} {
		if _, err := metricValue(dump, name); err != nil {
			return err
		}
	}

	// The wall-clock telemetry spine: traceparent round-trip, the
	// walltrace endpoint, the statusz page, and the latency exemplar.
	traceID, err := checkTelemetry(base, string(src))
	if err != nil {
		return err
	}
	fmt.Println("smoke: traceparent round-tripped through walltrace, statusz, and exemplars")

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return errors.New("daemon did not exit within 15s of SIGTERM")
	}
	fmt.Println("smoke: daemon drained and exited 0")

	// Post-mortem telemetry artifacts: the wide event must be in the
	// logs and the trace in the OTLP export file.
	logData, err := os.ReadFile(logPath)
	if err != nil {
		return err
	}
	if err := checkWideEvent(logData, traceID); err != nil {
		return err
	}
	otlpData, err := os.ReadFile(otlpPath)
	if err != nil {
		return fmt.Errorf("reading OTLP sink file: %w", err)
	}
	if len(bytes.TrimSpace(otlpData)) == 0 {
		return errors.New("OTLP sink file is empty after serving requests")
	}
	if !bytes.Contains(otlpData, []byte(traceID)) {
		return fmt.Errorf("OTLP sink file does not contain trace %s", traceID)
	}
	fmt.Println("smoke: wide event logged and OTLP file export carries the trace")

	// Warm restart: a second daemon on the same snapshot directory
	// must restore the persisted fits — including the fitted
	// backend's regression coefficients — and serve the exact bytes
	// the first daemon produced, without a single new calibration.
	second := exec.Command(bin, "-addr", "127.0.0.1:0", "-snapshot-dir", snapDir)
	second.Dir = root
	second.Stderr = os.Stderr
	secondOut, err := second.StdoutPipe()
	if err != nil {
		return err
	}
	if err := second.Start(); err != nil {
		return err
	}
	defer second.Process.Kill()
	base2, err := listenURL(secondOut)
	if err != nil {
		return err
	}
	if err := waitReady(base2, 15*time.Second); err != nil {
		return fmt.Errorf("warm-restarted daemon never became ready: %w", err)
	}
	warmFitted, err := projectRaw(base2+"/project?backend=fitted", string(src))
	if err != nil {
		return fmt.Errorf("warm-restarted ?backend=fitted: %w", err)
	}
	if !bytes.Equal(warmFitted, fittedRef) {
		return errors.New("warm-restarted fitted report differs from the pre-restart bytes")
	}
	dump, err = metricsDump(base2)
	if err != nil {
		return err
	}
	warmMisses, err := metricValue(dump, "engine_cache_misses_total")
	if err != nil {
		return err
	}
	if warmMisses != 0 {
		return fmt.Errorf("warm-restarted daemon ran %g calibrations serving fitted, want 0 (fit not restored)", warmMisses)
	}
	fmt.Println("smoke: restart warm-started the persisted fitted fit, byte-identical, zero recalibrations")
	return nil
}

// checkBackends exercises the backend registry surface: GET /backends
// must list the full registry with the default flagged, an unknown
// ?backend= must 400, and ?backend=fitted must project — twice,
// byte-identically, the second served from the calibration cache. It
// returns the fitted report bytes for the warm-restart comparison.
func checkBackends(base, src string) ([]byte, error) {
	resp, err := http.Get(base + "/backends")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /backends: status %d\n%.300s", resp.StatusCode, body)
	}
	var doc struct {
		Default  string `json:"default"`
		Backends []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
			Default     bool   `json:"default"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("GET /backends is not JSON: %v", err)
	}
	if doc.Default != "analytic" {
		return nil, fmt.Errorf("GET /backends default = %q, want analytic", doc.Default)
	}
	names := make(map[string]bool, len(doc.Backends))
	for _, b := range doc.Backends {
		names[b.Name] = true
		if b.Description == "" {
			return nil, fmt.Errorf("backend %q listed without a description", b.Name)
		}
		if b.Default != (b.Name == doc.Default) {
			return nil, fmt.Errorf("backend %q default flag is inconsistent", b.Name)
		}
	}
	for _, want := range []string{"analytic", "fitted", "piecewise"} {
		if !names[want] {
			return nil, fmt.Errorf("GET /backends does not list %q (got %v)", want, names)
		}
	}

	bad, err := http.Post(base+"/project?backend=nope", "text/plain", strings.NewReader(src))
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		return nil, fmt.Errorf("?backend=nope: status %d, want 400", bad.StatusCode)
	}

	fitted, err := projectRaw(base+"/project?backend=fitted", src)
	if err != nil {
		return nil, fmt.Errorf("?backend=fitted: %w", err)
	}
	again, err := projectRaw(base+"/project?backend=fitted", src)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(fitted, again) {
		return nil, errors.New("repeat ?backend=fitted projection is not byte-identical")
	}
	return fitted, nil
}

// inboundTraceparent is the caller-minted W3C trace context the
// telemetry checks propagate through the daemon.
const inboundTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// checkTelemetry sends one traced projection and follows its trace ID
// across every surface that must carry it: the response traceparent,
// /runs/{id}/walltrace (with queue.wait and all five engine stages),
// /statusz, and a latency-histogram exemplar. It returns the trace ID
// for the post-shutdown log and OTLP checks.
func checkTelemetry(base, src string) (string, error) {
	wantTrace := inboundTraceparent[3:35]

	req, err := http.NewRequest(http.MethodPost, base+"/project", strings.NewReader(src))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("traceparent", inboundTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("traced POST /project: status %d\n%.300s", resp.StatusCode, body)
	}
	echo := resp.Header.Get("Traceparent")
	if !strings.Contains(echo, wantTrace) {
		return "", fmt.Errorf("response traceparent %q does not continue trace %s", echo, wantTrace)
	}
	if strings.Contains(echo, inboundTraceparent[36:52]) {
		return "", fmt.Errorf("response traceparent %q reused the caller's span ID", echo)
	}
	runID := resp.Header.Get("X-Run-Id")
	if runID == "" {
		return "", errors.New("traced POST /project: no X-Run-Id response header")
	}

	wt, err := http.Get(base + "/runs/" + runID + "/walltrace")
	if err != nil {
		return "", err
	}
	wtBody, err := io.ReadAll(wt.Body)
	wt.Body.Close()
	if err != nil {
		return "", err
	}
	if wt.StatusCode != http.StatusOK || len(bytes.TrimSpace(wtBody)) == 0 {
		return "", fmt.Errorf("GET /runs/%s/walltrace: status %d, %d bytes", runID, wt.StatusCode, len(wtBody))
	}
	if !bytes.Contains(wtBody, []byte(wantTrace)) {
		return "", fmt.Errorf("walltrace does not carry inbound trace %s", wantTrace)
	}
	for _, span := range []string{"queue.wait",
		"stage.datausage", "stage.kernels", "stage.transfers", "stage.cpu", "stage.assemble"} {
		if !bytes.Contains(wtBody, []byte(span)) {
			return "", fmt.Errorf("walltrace is missing the %q span\n%.400s", span, wtBody)
		}
	}

	st, err := http.Get(base + "/statusz")
	if err != nil {
		return "", err
	}
	stBody, err := io.ReadAll(st.Body)
	st.Body.Close()
	if err != nil {
		return "", err
	}
	if st.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /statusz: status %d", st.StatusCode)
	}
	for _, want := range []string{"SLO burn rates", "admission", "calibration cache", runID} {
		if !strings.Contains(string(stBody), want) {
			return "", fmt.Errorf("/statusz does not mention %q\n%.600s", want, stBody)
		}
	}

	dump, err := metricsDump(base)
	if err != nil {
		return "", err
	}
	if !strings.Contains(dump, `# {trace_id="`+wantTrace+`"}`) {
		return "", fmt.Errorf("no grophecyd_request_seconds exemplar for trace %s", wantTrace)
	}
	return wantTrace, nil
}

// checkWideEvent scans the daemon's JSON logs for the canonical
// per-request wide event of the traced projection.
func checkWideEvent(logData []byte, traceID string) error {
	for _, line := range bytes.Split(logData, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // race-build banners etc.
		}
		if rec["msg"] != "request" || rec["trace_id"] != traceID {
			continue
		}
		for _, key := range []string{"tenant", "status", "duration_ms", "run", "queue_depth", "ms.queue.wait"} {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("wide event for trace %s is missing %q: %s", traceID, key, line)
			}
		}
		return nil
	}
	return fmt.Errorf("no canonical wide event (msg=request, trace_id=%s) in the daemon logs", traceID)
}

// project POSTs a skeleton and returns the projected full speedup
// plus the run ID.
func project(url, src string) (float64, string, error) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(src))
	if err != nil {
		return 0, "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("POST %s: status %d\n%s", url, resp.StatusCode, body)
	}
	var rep struct {
		Derived struct {
			SpeedupFull float64 `json:"speedupFull"`
		} `json:"derived"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return 0, "", fmt.Errorf("report is not JSON: %v", err)
	}
	if rep.Derived.SpeedupFull <= 0 {
		return 0, "", fmt.Errorf("speedupFull = %v, want > 0", rep.Derived.SpeedupFull)
	}
	return rep.Derived.SpeedupFull, resp.Header.Get("X-Run-Id"), nil
}

// projectRaw POSTs a skeleton and returns the raw response body.
func projectRaw(url, src string) ([]byte, error) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(src))
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return body, nil
}

// checkBatch POSTs a mixed two-job batch and verifies the skeleton
// job's report is byte-identical to the single-call body.
func checkBatch(base, src string, want []byte) error {
	jobs, err := json.Marshal([]map[string]any{
		{"skeleton": src},
		{"workload": "CFD", "size": "97K", "seed": 7},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(jobs))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /batch: status %d\n%.300s", resp.StatusCode, body)
	}
	var doc struct {
		Jobs []struct {
			Status int             `json:"status"`
			Error  string          `json:"error"`
			Report json.RawMessage `json:"report"`
		} `json:"jobs"`
		Succeeded int `json:"succeeded"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("batch response is not JSON: %v", err)
	}
	if doc.Succeeded != 2 || len(doc.Jobs) != 2 {
		return fmt.Errorf("batch: %d succeeded over %d rows, want 2/2\n%.300s",
			doc.Succeeded, len(doc.Jobs), body)
	}
	if !bytes.Equal(doc.Jobs[0].Report, want) {
		return errors.New("batch skeleton report is not byte-identical to POST /project")
	}
	// The legacy edge-free array must not grow DAG-era keys — clients
	// parsing the old shape see the old shape, byte for byte.
	for _, key := range []string{`"skipped"`, `"dependsOn"`, `"id"`, `"fromParent"`} {
		if bytes.Contains(body, []byte(key)) {
			return fmt.Errorf("edge-free batch response leaks DAG key %s", key)
		}
	}
	return nil
}

// checkDAGBatch POSTs a three-job dependency chain with
// Accept: application/x-ndjson and verifies the streamed delivery:
// one row per line, parents before children, every row 200, and a
// trailing summary line.
func checkDAGBatch(base, src string) error {
	jobs, err := json.Marshal([]map[string]any{
		{"id": "c", "dependsOn": []string{"b"}, "workload": "CFD", "size": "97K"},
		{"id": "a", "skeleton": src},
		{"id": "b", "dependsOn": []string{"a"}, "workload": "HotSpot", "size": "64 x 64"},
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/batch", bytes.NewReader(jobs))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DAG batch: status %d\n%.300s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("DAG batch: Content-Type %q, want application/x-ndjson", ct)
	}
	lines := bytes.Split(bytes.TrimRight(body, "\n"), []byte("\n"))
	if len(lines) != 4 {
		return fmt.Errorf("DAG batch: %d NDJSON lines, want 3 rows + summary\n%.300s", len(lines), body)
	}
	var order []string
	for _, line := range lines[:3] {
		var row struct {
			ID     string `json:"id"`
			Status int    `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("DAG batch row is not one JSON line: %v\n%.300s", err, line)
		}
		if row.Status != http.StatusOK {
			return fmt.Errorf("DAG batch row %q: status %d (%s)", row.ID, row.Status, row.Error)
		}
		order = append(order, row.ID)
	}
	// The chain c<-b<-a must stream parent before child regardless of
	// request order.
	if strings.Join(order, ",") != "a,b,c" {
		return fmt.Errorf("DAG batch rows streamed as %v, want parents before children [a b c]", order)
	}
	var summary struct {
		Succeeded int  `json:"succeeded"`
		Failed    int  `json:"failed"`
		Skipped   *int `json:"skipped"`
	}
	if err := json.Unmarshal(lines[3], &summary); err != nil {
		return fmt.Errorf("DAG batch summary line: %v\n%.300s", err, lines[3])
	}
	if summary.Succeeded != 3 || summary.Failed != 0 || summary.Skipped == nil || *summary.Skipped != 0 {
		return fmt.Errorf("DAG batch summary %s, want 3 succeeded / 0 failed / 0 skipped", lines[3])
	}
	return nil
}

// checkShedding occupies the daemon's single worker slot with a large
// batch, then probes /project until a request sheds: the 429 must
// carry Retry-After, /readyz must report saturation while the batch
// runs, and readiness must recover once it drains.
func checkShedding(base, src string) error {
	const batchJobs = 192
	jobs := make([]map[string]any, batchJobs)
	for i := range jobs {
		jobs[i] = map[string]any{"workload": "CFD", "size": "97K", "seed": 1000 + i}
	}
	body, err := json.Marshal(jobs)
	if err != nil {
		return err
	}

	batchDone := make(chan error, 1)
	go func() {
		// A probe request can occasionally win the slot first and shed
		// the batch itself; retry until the batch is the holder.
		for {
			resp, err := http.Post(base+"/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				batchDone <- err
				return
			}
			respBody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				batchDone <- err
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				continue
			}
			if resp.StatusCode != http.StatusOK {
				batchDone <- fmt.Errorf("big batch: status %d\n%.300s", resp.StatusCode, respBody)
				return
			}
			var doc struct {
				Succeeded int `json:"succeeded"`
			}
			if err := json.Unmarshal(respBody, &doc); err != nil {
				batchDone <- err
				return
			}
			if doc.Succeeded != batchJobs {
				batchDone <- fmt.Errorf("big batch: %d succeeded, want %d", doc.Succeeded, batchJobs)
				return
			}
			batchDone <- nil
			return
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		resp, err := http.Post(base+"/project", "text/plain", strings.NewReader(src))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				return errors.New("429 response missing the Retry-After header")
			}
			shed = true
			break
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("probe /project: status %d", resp.StatusCode)
		}
	}
	if !shed {
		return errors.New("no request shed while the batch held the worker slot")
	}

	// The batch is still holding the slot, so saturation is visible.
	r, err := http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	rb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(rb), "saturated") {
		return fmt.Errorf("/readyz while saturated: %d %q, want 503 mentioning saturation", r.StatusCode, rb)
	}

	if err := <-batchDone; err != nil {
		return err
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(base + "/readyz")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("/readyz did not recover after the batch drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricsDump fetches the /metrics text exposition.
func metricsDump(base string) (string, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	return string(dump), nil
}

// metricValue extracts an un-labeled sample's value from a dump.
func metricValue(dump, name string) (float64, error) {
	for _, line := range strings.Split(dump, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v, nil
		}
	}
	return 0, fmt.Errorf("sample %q not found in /metrics dump", name)
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("go.mod not found above working directory")
		}
		dir = parent
	}
}

// listenURL reads the daemon's one stdout line
// ("grophecyd: listening on http://HOST:PORT") and returns the URL.
func listenURL(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		if sc.Scan() {
			linec <- sc.Text()
			return
		}
		errc <- fmt.Errorf("daemon exited before announcing its address (%v)", sc.Err())
	}()
	select {
	case line := <-linec:
		i := strings.Index(line, "http://")
		if i < 0 {
			return "", fmt.Errorf("unexpected announce line %q", line)
		}
		return strings.TrimSpace(line[i:]), nil
	case err := <-errc:
		return "", err
	case <-time.After(10 * time.Second):
		return "", errors.New("daemon did not announce its address within 10s")
	}
}

// waitReady polls /readyz until the calibration probe has flipped it.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not ready within %v", timeout)
}
