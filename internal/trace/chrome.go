// Chrome trace_event export: the JSON object format consumed by
// chrome://tracing and by Perfetto's legacy importer. Every span
// becomes one complete ("ph":"X") event with microsecond timestamps
// in simulated time; span attributes ride along in "args".
package trace

import (
	"encoding/json"
	"fmt"
)

// ChromeEvent is one trace_event entry. The subset emitted here is
// the stable core of the format: complete events plus one metadata
// event naming the process.
type ChromeEvent struct {
	Name string `json:"name"`
	// Phase is "X" for complete events and "M" for metadata.
	Phase string `json:"ph"`
	// Ts and Dur are microseconds of simulated time.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	Cat string  `json:"cat,omitempty"`
	// Args carries span attributes; JSON marshaling sorts the keys,
	// keeping the export deterministic.
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeCategory labels every span event; viewers use it for
// filtering.
const chromeCategory = "sim"

// ChromeJSON exports the trace as a Chrome trace_event JSON document.
// Spans still open at export time extend to the current simulated
// clock. The export is deterministic: events appear depth-first in
// creation order and args keys are sorted by the JSON encoder.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("trace: nil tracer")
	}
	doc := ChromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents: []ChromeEvent{{
			Name:  "process_name",
			Phase: "M",
			Pid:   1,
			Tid:   1,
			Args:  map[string]string{"name": t.Root().Name()},
		}},
	}
	t.Walk(func(s *Span, depth int) {
		iv := s.Interval()
		ev := ChromeEvent{
			Name:  s.Name(),
			Phase: "X",
			Ts:    iv.Start * 1e6,
			Dur:   iv.Duration * 1e6,
			Pid:   1,
			Tid:   1,
			Cat:   chromeCategory,
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			ev.Args = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	})
	return json.MarshalIndent(doc, "", "  ")
}
