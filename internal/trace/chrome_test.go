package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

func TestChromeJSONRoundTrip(t *testing.T) {
	tr := New("grophecy")
	ctx := With(context.Background(), tr)
	kctx, k := Start(ctx, "kernel", String("variant", "tiled"))
	_, m := Start(kctx, "measure")
	m.SetAttr(Int("samples", 10))
	m.End()
	k.Advance(0.25)
	k.End()
	tr.Close()

	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc ChromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	// Metadata event + root + kernel + measure.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "M" {
		t.Fatalf("first event phase = %q, want M", doc.TraceEvents[0].Phase)
	}
	root := doc.TraceEvents[1]
	if root.Name != "grophecy" || root.Phase != "X" || root.Ts != 0 || root.Dur != 0.25e6 {
		t.Fatalf("root event = %+v", root)
	}
	kernel := doc.TraceEvents[2]
	if kernel.Args["variant"] != "tiled" {
		t.Fatalf("kernel args = %v", kernel.Args)
	}
	measure := doc.TraceEvents[3]
	if measure.Args["samples"] != "10" || measure.Dur != 0 {
		t.Fatalf("measure event = %+v", measure)
	}
}

// buildFromOps turns an opcode string into a well-formed span tree:
// 's' starts a child of the innermost open span, 'e' ends it, 'a'
// advances it, anything else is ignored. The construction maintains a
// stack, so the resulting tree is well-formed by construction —
// exactly the shape the exporter must handle for arbitrary inputs.
func buildFromOps(ops []byte) (*Tracer, int) {
	tr := New("fuzz-root")
	stack := []*Span{tr.Root()}
	spans := 1
	for i, op := range ops {
		switch op % 5 {
		case 0, 1:
			top := stack[len(stack)-1]
			s := tr.startChild(top, fmt.Sprintf("s%d", i), []Attr{Int("i", int64(i))})
			stack = append(stack, s)
			spans++
		case 2:
			if len(stack) > 1 {
				stack[len(stack)-1].End()
				stack = stack[:len(stack)-1]
			}
		case 3:
			stack[len(stack)-1].Advance(float64(op) / 255)
		case 4:
			stack[len(stack)-1].SetAttr(String("k", fmt.Sprintf("v%d", op)))
		}
	}
	for len(stack) > 1 {
		stack[len(stack)-1].End()
		stack = stack[:len(stack)-1]
	}
	tr.Close()
	return tr, spans
}

func FuzzChromeJSON(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 2})
	f.Add([]byte{0, 0, 0, 3, 2, 2, 1, 4, 2})
	f.Add([]byte("ssaaee"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		tr, spans := buildFromOps(ops)
		if err := tr.Check(); err != nil {
			t.Fatalf("stack-built tree must be well-formed: %v", err)
		}
		data, err := tr.ChromeJSON()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		var doc ChromeTrace
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("round-trip unmarshal: %v", err)
		}
		if doc.DisplayTimeUnit != "ms" {
			t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
		}
		if len(doc.TraceEvents) != spans+1 {
			t.Fatalf("got %d events, want %d spans + 1 metadata", len(doc.TraceEvents), spans)
		}
		for i, ev := range doc.TraceEvents {
			if ev.Name == "" {
				t.Fatalf("event %d has no name", i)
			}
			if ev.Phase != "X" && ev.Phase != "M" {
				t.Fatalf("event %d phase = %q", i, ev.Phase)
			}
			if ev.Pid != 1 || ev.Tid != 1 {
				t.Fatalf("event %d pid/tid = %d/%d", i, ev.Pid, ev.Tid)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("event %d has negative time: ts=%g dur=%g", i, ev.Ts, ev.Dur)
			}
		}
	})
}
