// Package trace is the observability substrate of the GROPHECY++
// pipeline: hierarchical spans stamped in deterministic *simulated*
// time, exportable as a Chrome trace_event JSON file (chrome.go) or a
// human-readable tree (tree.go).
//
// The repository has no wall clock anywhere in its modeled results —
// every duration is simulated — and the trace layer follows the same
// rule so that a given seed and fault plan reproduce the same trace
// byte for byte. The tracer owns one monotone simulated clock,
// starting at zero. Spans that represent projected GPU time advance
// the clock by their modeled duration (Span.Advance); structural
// spans (parsing, analysis, enumeration, measurement bookkeeping)
// consume no simulated time and show up as zero-duration spans whose
// attributes carry the interesting quantities (candidate counts,
// retries, simulated measurement cost).
//
// The zero value of *Tracer and *Span is safe: every method is a
// no-op on a nil receiver, so instrumented code never checks whether
// tracing is enabled. Propagation is through context.Context — With
// installs a tracer, Start opens a child of the current span.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Interval is one simulated-time interval in seconds. It is the
// single home of interval arithmetic shared by this package and
// internal/timeline (which embeds it in its events).
type Interval struct {
	// Start is seconds from the beginning of the trace.
	Start float64
	// Duration is the interval length in seconds.
	Duration float64
}

// End returns the interval's finish time.
func (iv Interval) End() float64 { return iv.Start + iv.Duration }

// Contains reports whether o lies entirely within iv, with a small
// relative tolerance for float accumulation.
func (iv Interval) Contains(o Interval) bool {
	eps := 1e-9 * (1 + iv.Duration)
	return o.Start >= iv.Start-eps && o.End() <= iv.End()+eps
}

// Attr is one span attribute. Values are pre-formatted strings so the
// export is deterministic regardless of type.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute with deterministic shortest
// round-trip formatting.
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(value)}
}

// Span is one node of the trace tree. All methods are safe on a nil
// receiver and safe for concurrent use (the owning tracer serializes
// mutation).
type Span struct {
	tr       *Tracer
	name     string
	parent   *Span
	children []*Span
	attrs    []Attr

	start  float64
	end    float64
	closed bool
}

// Tracer owns one trace tree and its simulated clock. A nil *Tracer
// is a valid disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	clock float64
	root  *Span
}

// spanPool recycles span nodes across trace trees. Spans are only
// returned to the pool by Tracer.Release, which owners call when a
// trace's life provably ends; a tracer whose spans are retained
// elsewhere (e.g. the daemon's flight ring) is simply never released
// and costs one allocation per span, as before.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// newSpan takes a span from the pool and initializes it.
func newSpan(tr *Tracer, name string, parent *Span, attrs []Attr, start float64) *Span {
	s := spanPool.Get().(*Span)
	s.tr, s.name, s.parent = tr, name, parent
	s.attrs = attrs
	s.start, s.end = start, 0
	s.closed = false
	s.children = s.children[:0]
	return s
}

// New returns a tracer whose root span is open at simulated time 0.
func New(rootName string) *Tracer {
	t := &Tracer{}
	t.root = newSpan(t, rootName, nil, nil, 0)
	return t
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Now returns the current simulated time in seconds.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

// Close ends the root span. Call it once, after the traced work.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.root.End()
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// With installs the tracer in the context.
func With(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the installed tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Current returns the innermost open span carried by the context, or
// nil.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start opens a child span of the context's current span (or of the
// root when none is set) and returns a derived context carrying it.
// With no tracer installed it returns (ctx, nil) and costs nothing.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := Current(ctx)
	if parent == nil {
		parent = t.root
	}
	s := t.startChild(parent, name, attrs)
	return context.WithValue(ctx, spanKey, s), s
}

// startChild creates the span under the tracer lock.
func (t *Tracer) startChild(parent *Span, name string, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := newSpan(t, name, parent, attrs, t.clock)
	parent.children = append(parent.children, s)
	return s
}

// Release recycles every span of the trace into the shared pool and
// leaves the tracer empty. Call it only when the trace's life has
// ended and no span or child-slice reference escapes — after an
// export, or when a per-operation tracer goes out of scope. Using any
// previously obtained *Span after Release is a logic error (the span
// may already be serving another tracer). A nil tracer is a no-op, so
// untraced paths need no check.
func (t *Tracer) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	root := t.root
	t.root = nil
	t.clock = 0
	t.mu.Unlock()
	if root != nil {
		releaseSpan(root)
	}
}

// Released reports whether Release has recycled this tracer's spans.
// A nil tracer is never released (it never held any).
func (t *Tracer) Released() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root == nil
}

// releaseSpan returns a span subtree to the pool.
func releaseSpan(s *Span) {
	for i, c := range s.children {
		releaseSpan(c)
		s.children[i] = nil
	}
	s.children = s.children[:0]
	s.tr, s.parent, s.attrs = nil, nil, nil
	s.name = ""
	spanPool.Put(s)
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Interval returns the span's simulated-time interval. An open span
// extends to the current clock.
func (s *Span) Interval() Interval {
	if s == nil {
		return Interval{}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	end := s.end
	if !s.closed {
		end = s.tr.clock
	}
	return Interval{Start: s.start, Duration: end - s.start}
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns the span attributes sorted by key.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := append([]Attr(nil), s.attrs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SetAttr adds or replaces one attribute.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// Advance moves the tracer's simulated clock forward by d seconds —
// the span is *spending* modeled time. Negative or NaN advances are
// ignored; advancing a closed span is a no-op.
func (s *Span) Advance(d float64) {
	if s == nil || !(d > 0) {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.closed {
		return
	}
	s.tr.clock += d
}

// End closes the span at the current simulated time. Ending twice is
// a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.end = s.tr.clock
}

// Check verifies the whole trace tree is well-formed: every span is
// closed, intervals have non-negative duration, children nest inside
// their parent, sibling start times are monotone non-decreasing, and
// child durations sum to no more than the parent duration. It is the
// invariant the property tests assert for every example skeleton.
func (t *Tracer) Check() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		return fmt.Errorf("trace: tracer already released")
	}
	return checkSpan(t.root)
}

func checkSpan(s *Span) error {
	if !s.closed {
		return fmt.Errorf("trace: span %q not closed", s.name)
	}
	if s.end < s.start {
		return fmt.Errorf("trace: span %q ends (%g) before it starts (%g)", s.name, s.end, s.start)
	}
	parent := Interval{Start: s.start, Duration: s.end - s.start}
	prevStart := s.start
	var childSum float64
	for _, c := range s.children {
		if c.start < prevStart {
			return fmt.Errorf("trace: span %q starts at %g before its elder sibling (%g)",
				c.name, c.start, prevStart)
		}
		prevStart = c.start
		if c.closed {
			if !parent.Contains(Interval{Start: c.start, Duration: c.end - c.start}) {
				return fmt.Errorf("trace: span %q [%g, %g] escapes parent %q [%g, %g]",
					c.name, c.start, c.end, s.name, s.start, s.end)
			}
			childSum += c.end - c.start
		}
		if err := checkSpan(c); err != nil {
			return err
		}
	}
	if eps := 1e-9 * (1 + parent.Duration); childSum > parent.Duration+eps {
		return fmt.Errorf("trace: children of %q sum to %g, more than the span's %g",
			s.name, childSum, parent.Duration)
	}
	return nil
}

// Walk visits every span of the tree depth-first in creation order.
func (t *Tracer) Walk(fn func(s *Span, depth int)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	root := t.root
	t.mu.Unlock()
	if root != nil {
		walkSpan(root, 0, fn)
	}
}

func walkSpan(s *Span, depth int, fn func(*Span, int)) {
	fn(s, depth)
	for _, c := range s.Children() {
		walkSpan(c, depth+1, fn)
	}
}
