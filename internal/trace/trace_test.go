package trace

import (
	"context"
	"strings"
	"testing"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := New("root")
	ctx := With(context.Background(), tr)

	kctx, kernel := Start(ctx, "kernel", String("name", "k1"))
	_, explore := Start(kctx, "explore")
	explore.SetAttr(Int("variants", 12))
	explore.End()
	kernel.Advance(2.0)
	kernel.End()

	_, xfer := Start(ctx, "transfer")
	xfer.Advance(1.5)
	xfer.End()
	tr.Close()

	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := tr.Root().Interval().Duration; got != 3.5 {
		t.Fatalf("root duration = %g, want 3.5", got)
	}
	if got := kernel.Interval(); got.Start != 0 || got.Duration != 2.0 {
		t.Fatalf("kernel interval = %+v", got)
	}
	if got := xfer.Interval(); got.Start != 2.0 || got.Duration != 1.5 {
		t.Fatalf("transfer interval = %+v", got)
	}
	if got := explore.Interval().Duration; got != 0 {
		t.Fatalf("structural span duration = %g, want 0", got)
	}
}

func TestNilSafety(t *testing.T) {
	// No tracer in the context: everything must be a cheap no-op.
	ctx, sp := Start(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("expected nil span without a tracer")
	}
	sp.SetAttr(String("k", "v"))
	sp.Advance(1)
	sp.End()
	if sp.Name() != "" || sp.Interval() != (Interval{}) || sp.Children() != nil || sp.Attrs() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	var tr *Tracer
	tr.Close()
	tr.Walk(func(*Span, int) { t.Fatal("nil tracer must not walk") })
	if err := tr.Check(); err != nil {
		t.Fatalf("nil tracer Check: %v", err)
	}
	if tr.Now() != 0 || tr.Root() != nil || tr.Tree() != "" {
		t.Fatal("nil tracer accessors must return zero values")
	}
	if _, err := tr.ChromeJSON(); err == nil {
		t.Fatal("nil tracer ChromeJSON must error")
	}
	_ = ctx
}

func TestSetAttrReplaces(t *testing.T) {
	tr := New("root")
	ctx := With(context.Background(), tr)
	_, sp := Start(ctx, "s", String("k", "old"))
	sp.SetAttr(String("k", "new"))
	sp.SetAttr(String("b", "1"))
	sp.End()
	attrs := sp.Attrs()
	if len(attrs) != 2 || attrs[0] != (Attr{"b", "1"}) || attrs[1] != (Attr{"k", "new"}) {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestCheckUnclosedSpan(t *testing.T) {
	tr := New("root")
	ctx := With(context.Background(), tr)
	Start(ctx, "open")
	tr.Close()
	if err := tr.Check(); err == nil || !strings.Contains(err.Error(), "not closed") {
		t.Fatalf("Check = %v, want unclosed error", err)
	}
}

func TestCheckChildEscapesParent(t *testing.T) {
	tr := New("root")
	ctx := With(context.Background(), tr)
	pctx, parent := Start(ctx, "parent")
	_, child := Start(pctx, "child")
	parent.End()
	child.Advance(1)
	child.End()
	tr.Close()
	if err := tr.Check(); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("Check = %v, want escape error", err)
	}
}

func TestCheckSiblingOverCommit(t *testing.T) {
	// Two siblings advancing inside a parent are fine; the sum equals
	// the parent duration exactly.
	tr := New("root")
	ctx := With(context.Background(), tr)
	pctx, parent := Start(ctx, "parent")
	for i := 0; i < 100; i++ {
		_, c := Start(pctx, "c")
		c.Advance(0.01)
		c.End()
	}
	parent.End()
	tr.Close()
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestIntervalContains(t *testing.T) {
	outer := Interval{Start: 1, Duration: 4}
	if !outer.Contains(Interval{Start: 1, Duration: 4}) {
		t.Fatal("interval must contain itself")
	}
	if !outer.Contains(Interval{Start: 2, Duration: 1}) {
		t.Fatal("inner interval must be contained")
	}
	if outer.Contains(Interval{Start: 0.5, Duration: 1}) {
		t.Fatal("interval starting earlier must not be contained")
	}
	if outer.Contains(Interval{Start: 4, Duration: 2}) {
		t.Fatal("interval ending later must not be contained")
	}
	if got := outer.End(); got != 5 {
		t.Fatalf("End = %g, want 5", got)
	}
}

func TestTreeRendering(t *testing.T) {
	tr := New("grophecy")
	ctx := With(context.Background(), tr)
	_, k := Start(ctx, "kernel", String("name", "k1"))
	k.Advance(1)
	k.End()
	tr.Close()
	out := tr.Tree()
	if !strings.Contains(out, "grophecy 1s") {
		t.Fatalf("tree missing root line:\n%s", out)
	}
	if !strings.Contains(out, "  kernel 1s (100.0%) [name=k1]") {
		t.Fatalf("tree missing kernel line:\n%s", out)
	}
}

func TestCurrentAndFromContext(t *testing.T) {
	tr := New("root")
	ctx := With(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the tracer")
	}
	if Current(ctx) != nil {
		t.Fatal("no span started yet")
	}
	sctx, sp := Start(ctx, "s")
	if Current(sctx) != sp {
		t.Fatal("Current must return the innermost span")
	}
	sp.End()
}
