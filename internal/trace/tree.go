// Human-readable tree rendering of a trace, for terminals. Chrome
// JSON is for tooling; this is for eyeballs.
package trace

import (
	"fmt"
	"strings"

	"grophecy/internal/units"
)

// Tree renders the trace as an indented tree: one line per span with
// its simulated duration, its share of the root duration, and its
// attributes. Zero-duration structural spans print without a share.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	total := t.Root().Interval().Duration
	var b strings.Builder
	t.Walk(func(s *Span, depth int) {
		iv := s.Interval()
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), s.Name(),
			units.FormatSeconds(iv.Duration))
		if total > 0 && iv.Duration > 0 && depth > 0 {
			fmt.Fprintf(&b, " (%.1f%%)", 100*iv.Duration/total)
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			parts := make([]string, len(attrs))
			for i, a := range attrs {
				parts[i] = a.Key + "=" + a.Value
			}
			fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	})
	return b.String()
}
