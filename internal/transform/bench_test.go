package transform

import (
	"testing"

	"grophecy/internal/gpu"
)

func BenchmarkEnumerate(b *testing.B) {
	k := stencilKernel(1024)
	arch := gpu.QuadroFX5600()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(k, arch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBest(b *testing.B) {
	k := stencilKernel(1024)
	arch := gpu.QuadroFX5600()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Best(k, arch); err != nil {
			b.Fatal(err)
		}
	}
}
