// Content-addressed memoization of the transformation-space
// exploration.
//
// Enumerate is pure: its output depends only on the kernel's content
// and the target architecture, yet before this cache existed it was
// recomputed for every projection request — the daemon re-parses
// skeletons per request, so pointer identity never carries across
// requests, but content identity does. The cache keys entries by the
// kernel's canonical content encoding (skeleton.Kernel.AppendCanonical)
// plus the full architecture value, and stores both the enumerated
// variant set and, lazily, the analytically best variant — so a warm
// request skips the enumeration *and* the per-candidate projection.
//
// Correctness argument: a key hit means the previous kernel had
// byte-identical canonical content, which implies deeply equal
// analysis inputs, which (Enumerate being deterministic) implies
// deeply equal variants. There is no fingerprint truncation anywhere —
// keys are the full encodings — so collisions are impossible rather
// than improbable. The property tests in cache_test.go assert
// memoized == cold across seeded random skeletons, and the golden
// harness pins reports byte-identical with the cache on and off.
package transform

import (
	"fmt"
	"sync"

	"grophecy/internal/gpu"
	"grophecy/internal/metrics"
	"grophecy/internal/perfmodel"
	"grophecy/internal/skeleton"
)

var (
	mCacheHits = metrics.Default.MustCounter("transform_cache_hits_total",
		"enumeration cache hits")
	mCacheMisses = metrics.Default.MustCounter("transform_cache_misses_total",
		"enumeration cache misses")
	mCacheEvictions = metrics.Default.MustCounter("transform_cache_evictions_total",
		"enumeration cache entries evicted at capacity")
)

// maxCacheEntries bounds the cache. An entry is a few KB (typically
// 18-36 variants); the bound keeps a daemon serving many distinct
// skeletons at a few MB of cache, evicted FIFO.
const maxCacheEntries = 512

// entry is one memoized enumeration. variants is immutable after
// insertion — readers receive clones. The best-variant projection is
// filled lazily by BestCtx under mu; racing fills compute identical
// values, so last-write-wins is deterministic.
type entry struct {
	variants []Variant

	mu      sync.Mutex
	bestOK  bool
	bestIdx int
	best    perfmodel.Projection
}

// cache is the package-global memo table. Key strings embed the
// kernel canonical encoding and the architecture rendering.
type cache struct {
	mu      sync.Mutex
	enabled bool
	entries map[string]*entry
	order   []string // FIFO eviction order
	hits    int64
	misses  int64
}

var enumCache = &cache{enabled: true, entries: make(map[string]*entry)}

// keyBufPool recycles key-building buffers across requests.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// cacheKey renders the full (kernel content, architecture) key into
// buf. The architecture is rendered with %#v so any future Arch field
// automatically becomes part of the key instead of silently aliasing
// entries.
func cacheKey(buf []byte, k *skeleton.Kernel, arch gpu.Arch) []byte {
	buf = k.AppendCanonical(buf)
	buf = append(buf, '@')
	return fmt.Appendf(buf, "%#v", arch)
}

// lookup returns the entry for key, or nil.
func (c *cache) lookup(key []byte) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return nil
	}
	e := c.entries[string(key)] // no-copy lookup
	if e != nil {
		c.hits++
		mCacheHits.Inc()
	}
	return e
}

// insert stores a computed entry, evicting the oldest entries at
// capacity. Returns the entry that ends up cached for the key (an
// earlier racing insert wins, keeping best-variant memoization on one
// object).
func (c *cache) insert(key []byte, e *entry) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	mCacheMisses.Inc()
	if !c.enabled {
		return e
	}
	if prev, ok := c.entries[string(key)]; ok {
		return prev
	}
	ks := string(key)
	for len(c.order) >= maxCacheEntries {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		mCacheEvictions.Inc()
	}
	c.entries[ks] = e
	c.order = append(c.order, ks)
	return e
}

// CacheStats is a point-in-time snapshot of the enumeration cache.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
	Enabled      bool
}

// Stats returns the current cache counters.
func Stats() CacheStats {
	enumCache.mu.Lock()
	defer enumCache.mu.Unlock()
	return CacheStats{
		Hits:    enumCache.hits,
		Misses:  enumCache.misses,
		Entries: len(enumCache.entries),
		Enabled: enumCache.enabled,
	}
}

// SetCacheEnabled switches the memoization on or off (it is on by
// default) and reports the previous setting. Disabling also clears
// the cache. Intended for tests proving memoized == cold and for
// memory-constrained embedders.
func SetCacheEnabled(on bool) bool {
	enumCache.mu.Lock()
	defer enumCache.mu.Unlock()
	prev := enumCache.enabled
	enumCache.enabled = on
	if !on {
		enumCache.entries = make(map[string]*entry)
		enumCache.order = nil
	}
	return prev
}

// ResetCache drops every cached entry and zeroes the hit/miss
// counters, leaving the enabled flag as is.
func ResetCache() {
	enumCache.mu.Lock()
	defer enumCache.mu.Unlock()
	enumCache.entries = make(map[string]*entry)
	enumCache.order = nil
	enumCache.hits, enumCache.misses = 0, 0
}

// cloneVariants returns a defensive copy: cached variant slices are
// immutable, callers own their return values.
func cloneVariants(vs []Variant) []Variant {
	out := make([]Variant, len(vs))
	copy(out, vs)
	return out
}

// cachedEntry returns the memo entry for (k, arch), computing and
// inserting it on a miss. With the cache disabled it computes a
// transient entry. The returned entry's variants must not be mutated.
func cachedEntry(k *skeleton.Kernel, arch gpu.Arch) (*entry, error) {
	bufp := keyBufPool.Get().(*[]byte)
	key := cacheKey((*bufp)[:0], k, arch)
	if e := enumCache.lookup(key); e != nil {
		*bufp = key[:0]
		keyBufPool.Put(bufp)
		return e, nil
	}
	variants, err := enumerate(k, arch)
	if err != nil {
		*bufp = key[:0]
		keyBufPool.Put(bufp)
		return nil, err
	}
	e := enumCache.insert(key, &entry{variants: variants, bestIdx: -1})
	*bufp = key[:0]
	keyBufPool.Put(bufp)
	return e, nil
}
