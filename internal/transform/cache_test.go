package transform

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"grophecy/internal/gpu"
	"grophecy/internal/skeleton"
)

// randomKernel generates a seeded random valid kernel: 1-2 parallel
// loops (optionally followed by a sequential reduction loop), arrays
// whose ranks match the parallel loop nest, and affine or irregular
// accesses. The generator exercises the whole canonical-encoding
// surface: repeated arrays, identical-content distinct arrays,
// shifted indices, irregular indices, and varying instruction mixes.
func randomKernel(rng *rand.Rand, id int) *skeleton.Kernel {
	sizes := []int64{128, 256, 512, 1024}
	nPar := 1 + rng.Intn(2)
	loops := make([]skeleton.Loop, 0, 3)
	vars := make([]string, 0, 3)
	dims := make([]int64, 0, 2)
	for i := 0; i < nPar; i++ {
		v := fmt.Sprintf("i%d", i)
		n := sizes[rng.Intn(len(sizes))]
		loops = append(loops, skeleton.ParLoop(v, n))
		vars = append(vars, v)
		dims = append(dims, n)
	}
	if rng.Intn(3) == 0 {
		loops = append(loops, skeleton.SeqLoop("r", int64(4+rng.Intn(60))))
	}

	elems := []skeleton.ElemType{skeleton.Float32, skeleton.Int32}
	nArr := 1 + rng.Intn(3)
	arrays := make([]*skeleton.Array, nArr)
	for i := range arrays {
		arrays[i] = skeleton.NewArray(fmt.Sprintf("a%d", i), elems[rng.Intn(len(elems))], dims...)
	}
	// Occasionally add a second array with *identical content* but
	// distinct identity: the canonical encoding must keep them apart
	// (distinct arrays change the register estimate).
	if rng.Intn(4) == 0 {
		arrays = append(arrays, skeleton.NewArray(arrays[0].Name, arrays[0].Elem, dims...))
	}

	idx := func() []skeleton.IndexExpr {
		out := make([]skeleton.IndexExpr, len(dims))
		for d := range out {
			switch rng.Intn(3) {
			case 0:
				out[d] = skeleton.Idx(vars[d])
			case 1:
				out[d] = skeleton.IdxPlus(vars[d], int64(rng.Intn(5)-2))
			default:
				out[d] = skeleton.Idx(vars[len(vars)-1-d])
			}
		}
		return out
	}

	nLoads := 1 + rng.Intn(5)
	accs := make([]skeleton.Access, 0, nLoads+1)
	for i := 0; i < nLoads; i++ {
		a := arrays[rng.Intn(len(arrays))]
		if len(dims) == 1 && rng.Intn(5) == 0 {
			accs = append(accs, skeleton.LoadOf(a, skeleton.IdxIrregular()))
			continue
		}
		accs = append(accs, skeleton.LoadOf(a, idx()...))
	}
	accs = append(accs, skeleton.StoreOf(arrays[rng.Intn(len(arrays))], idx()...))

	return &skeleton.Kernel{
		Name:  fmt.Sprintf("rand%d", id),
		Loops: loops,
		Stmts: []skeleton.Statement{{
			Accesses:        accs,
			Flops:           rng.Intn(64),
			IntOps:          rng.Intn(16),
			Transcendentals: rng.Intn(4),
		}},
	}
}

// TestMemoizedEnumerationMatchesCold is the memoization property
// test: across seeded random kernels, Enumerate through a cold cache,
// Enumerate through a warm cache, and the uncached enumerate must be
// deeply equal — and the warm path must actually hit.
func TestMemoizedEnumerationMatchesCold(t *testing.T) {
	prev := SetCacheEnabled(true)
	defer SetCacheEnabled(prev)
	ResetCache()

	rng := rand.New(rand.NewSource(7))
	arch := gpu.QuadroFX5600()
	archs := []gpu.Arch{arch, gpu.TeslaC2050()}
	for i := 0; i < 60; i++ {
		k := randomKernel(rng, i)
		if err := k.Validate(); err != nil {
			t.Fatalf("generator produced an invalid kernel: %v", err)
		}
		a := archs[i%len(archs)]

		cold, err := enumerate(k, a)
		if err != nil {
			t.Fatalf("kernel %d: cold enumerate: %v", i, err)
		}
		before := Stats()
		miss, err := Enumerate(k, a)
		if err != nil {
			t.Fatalf("kernel %d: miss-path Enumerate: %v", i, err)
		}
		hit, err := Enumerate(k, a)
		if err != nil {
			t.Fatalf("kernel %d: hit-path Enumerate: %v", i, err)
		}
		after := Stats()

		if !reflect.DeepEqual(cold, miss) {
			t.Fatalf("kernel %d: miss-path variants differ from cold enumeration", i)
		}
		if !reflect.DeepEqual(cold, hit) {
			t.Fatalf("kernel %d: hit-path variants differ from cold enumeration", i)
		}
		if after.Hits < before.Hits+1 {
			t.Fatalf("kernel %d: second Enumerate did not hit (stats %+v -> %+v)", i, before, after)
		}
	}
}

// TestEnumerateReturnsCallerOwnedSlices: mutating one call's result
// must not leak into the next call's (the cache clones on return).
func TestEnumerateReturnsCallerOwnedSlices(t *testing.T) {
	prev := SetCacheEnabled(true)
	defer SetCacheEnabled(prev)
	ResetCache()

	k := stencilKernel(512)
	arch := gpu.QuadroFX5600()
	first, err := Enumerate(k, arch)
	if err != nil {
		t.Fatal(err)
	}
	want := first[0].Name
	first[0].Name = "CLOBBERED"
	first[0].Ch.Threads = -1

	second, err := Enumerate(k, arch)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Name != want || second[0].Ch.Threads < 0 {
		t.Fatalf("cache leaked a caller mutation: %+v", second[0])
	}
}

// TestBestMatchesAcrossCacheStates: the selected best variant and its
// projection must be identical with the cache disabled, on a cache
// miss, and on a cache hit (where the memoized best short-circuits
// candidate evaluation).
func TestBestMatchesAcrossCacheStates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arch := gpu.QuadroFX5600()
	for i := 0; i < 20; i++ {
		k := randomKernel(rng, 1000+i)

		SetCacheEnabled(false)
		vOff, pOff, errOff := Best(k, arch)

		SetCacheEnabled(true)
		ResetCache()
		vMiss, pMiss, errMiss := Best(k, arch)
		vHit, pHit, errHit := Best(k, arch)
		SetCacheEnabled(false)

		if (errOff == nil) != (errMiss == nil) || (errOff == nil) != (errHit == nil) {
			t.Fatalf("kernel %d: error disagreement: off=%v miss=%v hit=%v", i, errOff, errMiss, errHit)
		}
		if errOff != nil {
			continue
		}
		if !reflect.DeepEqual(vOff, vMiss) || !reflect.DeepEqual(pOff, pMiss) {
			t.Fatalf("kernel %d: miss-path best differs from uncached", i)
		}
		if !reflect.DeepEqual(vOff, vHit) || !reflect.DeepEqual(pOff, pHit) {
			t.Fatalf("kernel %d: hit-path best differs from uncached", i)
		}
	}
	SetCacheEnabled(true)
}

// TestCacheEviction: the FIFO bound holds and evicted keys recompute
// correctly.
func TestCacheEviction(t *testing.T) {
	prev := SetCacheEnabled(true)
	defer SetCacheEnabled(prev)
	ResetCache()

	rng := rand.New(rand.NewSource(3))
	arch := gpu.QuadroFX5600()
	for i := 0; i < maxCacheEntries+40; i++ {
		k := randomKernel(rng, 2000+i)
		if _, err := Enumerate(k, arch); err != nil {
			t.Fatalf("kernel %d: %v", i, err)
		}
	}
	if st := Stats(); st.Entries > maxCacheEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", st.Entries, maxCacheEntries)
	}
}
