// Package transform implements GROPHECY's transformation-space
// exploration (paper §II-C): given a code skeleton, enumerate
// plausible GPU mappings of the kernel — thread-block shapes,
// shared-memory staging of reused array sections, sequential-loop
// unrolling — and synthesize the performance characteristics of each
// variant for the analytical model.
//
// GROPHECY "automatically explores a number of different optimization
// approaches and projects the execution time for each transformation,
// without the need to implement and tune GPU code"; the projected
// kernel time is the best across variants, and the paper's measured
// kernels are hand-coded with the same strategies the explorer
// selected (§IV-A). This package reproduces exactly that contract:
// Enumerate produces the variants, and internal/core projects each,
// picks the winner, and hands the winner's characteristics to the
// timing simulator as the "hand-coded" implementation.
package transform

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"grophecy/internal/gpu"
	"grophecy/internal/metrics"
	"grophecy/internal/perfmodel"
	"grophecy/internal/skeleton"
	"grophecy/internal/trace"
)

var (
	mEnumerations = metrics.Default.MustCounter("transform_enumerations_total",
		"kernel transformation-space enumerations")
	mVariants = metrics.Default.MustCounter("transform_variants_total",
		"transformation variants produced across all enumerations")
)

// Variant is one explored transformation of a kernel.
type Variant struct {
	// Name encodes the transformation, e.g. "bs256/tiled/unroll2".
	Name string
	// BlockSize is threads per block; BlockDims is the 2D block shape
	// (BlockDims[1] is 1 for 1D kernels).
	BlockSize int
	BlockDims [2]int
	// SharedStaging marks variants that stage reused array tiles in
	// shared memory.
	SharedStaging bool
	// Unroll is the sequential-loop unroll factor.
	Unroll int
	// Ch is the synthesized input for the performance models.
	Ch perfmodel.Characteristics
}

// blockSizes is the candidate thread-block size ladder, all
// half-warp-aligned and within G80-era limits.
var blockSizes = []int{64, 128, 192, 256, 384, 512}

// unrollFactors are the candidate sequential-loop unroll factors.
var unrollFactors = []int{1, 2, 4}

// Enumerate explores the transformation space of one kernel on one
// architecture and returns every launchable variant's characteristics.
// The kernel must validate and have at least one parallel loop.
//
// Enumeration is memoized by kernel content and architecture (see
// cache.go): repeated projections of content-identical kernels — the
// daemon's steady state — return a clone of the cached variant set
// instead of re-running the analysis. The caller owns the returned
// slice either way.
func Enumerate(k *skeleton.Kernel, arch gpu.Arch) ([]Variant, error) {
	e, err := cachedEntry(k, arch)
	if err != nil {
		return nil, err
	}
	return cloneVariants(e.variants), nil
}

// enumerate is the memoization-free exploration: the cold path behind
// Enumerate, and the reference the property tests compare the cache
// against.
func enumerate(k *skeleton.Kernel, arch gpu.Arch) ([]Variant, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	par := k.ParallelLoops()
	if len(par) == 0 {
		return nil, fmt.Errorf("transform: kernel %q has no parallel loops to map to threads", k.Name)
	}

	an := analyzeKernel(k, arch)
	variants := make([]Variant, 0, 2*len(blockSizes)*len(unrollFactors))
	for _, bs := range blockSizes {
		if bs > arch.MaxThreadsPerBlock {
			continue
		}
		for _, unroll := range unrollFactors {
			if unroll > 1 && k.SequentialIterations() < int64(unroll) {
				continue // nothing to unroll
			}
			variants = append(variants, an.variant(bs, false, unroll))
			if an.stageable() {
				variants = append(variants, an.variant(bs, true, unroll))
			}
		}
	}
	// Deterministic order for reports.
	sort.Slice(variants, func(i, j int) bool { return variants[i].Name < variants[j].Name })
	mEnumerations.Inc()
	mVariants.Add(int64(len(variants)))
	return variants, nil
}

// analysis caches the skeleton-derived quantities shared by all
// variants of one kernel.
type analysis struct {
	k    *skeleton.Kernel
	arch gpu.Arch

	threads  int64
	seqIters int64
	dims     int // number of parallel dims mapped to the block (1 or 2)

	// Per innermost iteration.
	// Per GPU thread, weighted by each statement's execution depth.
	flopsPT, intOpsPT, transcPT float64
	loadsPT, storesPT           float64
	loadBytesPT, storeBytesPT   float64

	// Coalescing against the thread-x loop variable, weighted by
	// per-thread executions.
	regularW   float64
	irregularW float64
	uniformW   float64 // warp-uniform gathers: coalesced but data-dependent rows
	txnsSumW   float64 // sum of per-request transaction counts x weight

	// Stencil reuse groups eligible for shared-memory staging.
	groups []stencilGroup
}

// stencilGroup is a set of loads of one array that differ only in
// constant offsets — the classic staging opportunity.
type stencilGroup struct {
	array   *skeleton.Array
	loadsPT float64  // per-thread loads the staging eliminates
	radius  [2]int64 // max |offset| along the block dims
}

func analyzeKernel(k *skeleton.Kernel, arch gpu.Arch) *analysis {
	an := &analysis{
		k:        k,
		arch:     arch,
		threads:  k.ParallelIterations(),
		seqIters: k.SequentialIterations(),
	}
	par := k.ParallelLoops()
	an.dims = 1
	if len(par) >= 2 {
		an.dims = 2
	}
	// The thread-x variable is the innermost parallel loop: it varies
	// fastest across threads of a warp, so it decides coalescing.
	xVar := par[len(par)-1].Var
	yVar := ""
	if an.dims == 2 {
		yVar = par[len(par)-2].Var
	}

	groupLoads := make(map[*skeleton.Array]float64)
	groupCount := make(map[*skeleton.Array]int)
	groupRadius := make(map[*skeleton.Array][2]int64)

	halfWarp := int64(arch.WarpSize / 2)
	for _, st := range k.Stmts {
		execs := float64(k.ExecsPerThread(st))
		an.flopsPT += float64(st.Flops) * execs
		an.intOpsPT += float64(st.IntOps) * execs
		an.transcPT += float64(st.Transcendentals) * execs

		for _, ac := range st.Accesses {
			elem := ac.Array.Elem.Size()
			if ac.Kind == skeleton.Load {
				an.loadsPT += execs
				an.loadBytesPT += float64(elem) * execs
			} else {
				an.storesPT += execs
				an.storeBytesPT += float64(elem) * execs
			}

			if ac.IrregularIndex() {
				// Warp-uniform gather: if the thread-x variable
				// walks the affine dimensions unit-stride (e.g.
				// x[row(k)][c] with c mapped to threadIdx.x), the
				// data-dependent dimensions are constant across a
				// warp and the request coalesces like a stream.
				// Only the DRAM row locality across warps stays
				// data-dependent, so it counts as a quarter-weight
				// irregular request.
				if affineXCoeff(ac, xVar) == 1 {
					an.regularW += execs
					an.uniformW += execs
					perHalf := (elem*halfWarp + arch.CoalesceSegment - 1) / arch.CoalesceSegment
					an.txnsSumW += 2 * float64(perHalf) * execs
					continue
				}
				// Scattered gather: GROPHECY optimistically assumes
				// a data layout transformation can mostly coalesce
				// it; record the request as irregular so the
				// simulator can disagree. (A sparse array accessed
				// through an affine index — a CSR value stream —
				// coalesces normally and is NOT irregular here.)
				an.irregularW += execs
				continue
			}
			coeff, _ := ac.FlattenedCoeff(xVar)
			stride := coeff
			if stride < 0 {
				stride = -stride
			}
			var txns float64
			switch {
			case stride == 0:
				// Uniform address across the warp: one transaction
				// per half-warp.
				txns = 2
			default:
				bytesSpan := stride * elem
				perHalf := (halfWarp*bytesSpan + arch.CoalesceSegment - 1) / arch.CoalesceSegment
				if perHalf > halfWarp {
					perHalf = halfWarp
				}
				if perHalf < 1 {
					perHalf = 1
				}
				txns = 2 * float64(perHalf)
			}
			an.regularW += execs
			an.txnsSumW += txns * execs

			// Stencil-group detection for staging: loads whose
			// indices are (parallel var + const) per dimension.
			if ac.Kind == skeleton.Load && isStencilAccess(ac, xVar, yVar) {
				groupLoads[ac.Array] += execs
				groupCount[ac.Array]++
				r := groupRadius[ac.Array]
				offX, offY := stencilOffsets(ac, xVar, yVar)
				if abs := absInt64(offX); abs > r[0] {
					r[0] = abs
				}
				if abs := absInt64(offY); abs > r[1] {
					r[1] = abs
				}
				groupRadius[ac.Array] = r
			}
		}
	}
	for arr, count := range groupCount {
		if count >= 2 {
			an.groups = append(an.groups, stencilGroup{
				array:   arr,
				loadsPT: groupLoads[arr],
				radius:  groupRadius[arr],
			})
		}
	}
	sort.Slice(an.groups, func(i, j int) bool {
		return an.groups[i].array.Name < an.groups[j].array.Name
	})
	return an
}

// isStencilAccess reports whether every index dimension is either a
// constant or (block var + const) with coefficient 1.
func isStencilAccess(ac skeleton.Access, xVar, yVar string) bool {
	for _, e := range ac.Index {
		vars := e.Vars()
		switch len(vars) {
		case 0:
			continue
		case 1:
			v := vars[0]
			if (v != xVar && v != yVar) || e.Coeff(v) != 1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// affineXCoeff returns the flattened coefficient of loop variable v
// over the affine dimensions of the access, ignoring irregular ones.
func affineXCoeff(ac skeleton.Access, v string) int64 {
	var total int64
	for dim, e := range ac.Index {
		if e.Irregular {
			continue
		}
		total += e.Coeff(v) * ac.Array.RowStride(dim)
	}
	return total
}

// stencilOffsets extracts the constant offsets along the x and y block
// variables of a stencil access.
func stencilOffsets(ac skeleton.Access, xVar, yVar string) (offX, offY int64) {
	for _, e := range ac.Index {
		if e.Uses(xVar) {
			offX = e.Const
		} else if yVar != "" && e.Uses(yVar) {
			offY = e.Const
		}
	}
	return offX, offY
}

// stageable reports whether any stencil group justifies staging.
func (an *analysis) stageable() bool { return len(an.groups) > 0 }

// blockShape picks a 2D block shape for a given size: x kept at a
// half-warp-friendly 16 (or the whole block for 1D kernels).
func (an *analysis) blockShape(bs int) [2]int {
	if an.dims == 1 {
		return [2]int{bs, 1}
	}
	bx := 16
	if bs < bx {
		bx = bs
	}
	return [2]int{bx, bs / bx}
}

// variant synthesizes the characteristics of one transformation.
func (an *analysis) variant(bs int, staging bool, unroll int) Variant {
	shape := an.blockShape(bs)
	name := fmt.Sprintf("bs%d", bs)
	if staging {
		name += "/tiled"
	}
	if unroll > 1 {
		name += fmt.Sprintf("/unroll%d", unroll)
	}

	// Instruction synthesis per thread: arithmetic plus one
	// addressing op per access plus sequential-loop control amortized
	// by unrolling.
	accesses := an.loadsPT + an.storesPT
	loopOverhead := 2.0 * float64(an.seqIters) / float64(unroll)
	comp := an.flopsPT + an.intOpsPT + 4*an.transcPT + accesses + loopOverhead

	loads := an.loadsPT
	stores := an.storesPT
	bytes := an.loadBytesPT + an.storeBytesPT

	var shmem int64
	var syncs float64
	if staging {
		for _, g := range an.groups {
			elem := g.array.Elem.Size()
			tileX := int64(shape[0]) + 2*g.radius[0]
			tileY := int64(1)
			if an.dims == 2 {
				tileY = int64(shape[1]) + 2*g.radius[1]
			}
			footprint := tileX * tileY
			shmem += footprint * elem

			fills := float64(footprint) / float64(bs) // coalesced fill loads per thread
			removed := g.loadsPT                      // global loads eliminated
			loads = loads - removed + fills
			bytes = bytes - removed*float64(elem) + fills*float64(elem)
			// Shared-memory reads replace the removed loads: cheap,
			// but they are instructions.
			comp += removed
			syncs += 1
		}
		if loads < 0 {
			loads = 0
		}
	}

	totalReqs := an.regularW + an.irregularW
	var txns float64 = 2
	if totalReqs > 0 {
		// Model view: irregular requests are priced as if a layout
		// transformation coalesced them into 2 transactions.
		txns = (an.txnsSumW + 2*an.irregularW) / totalReqs
	}
	if staging {
		// Fill loads are stride-1; staging strictly improves the mix
		// toward coalesced.
		txns = math.Min(txns, 2+0.5*(txns-2))
	}

	irregular := 0.0
	if totalReqs > 0 {
		irregular = (an.irregularW + 0.25*an.uniformW) / totalReqs
	}

	regs := 8 + 2*distinctArrays(an.k) + 2*(unroll-1)
	if staging {
		regs += 4
	}

	return Variant{
		Name:          name,
		BlockSize:     bs,
		BlockDims:     shape,
		SharedStaging: staging,
		Unroll:        unroll,
		Ch: perfmodel.Characteristics{
			Name:                   an.k.Name + ":" + name,
			Threads:                an.threads,
			BlockSize:              bs,
			CompInstsPerThread:     comp,
			GlobalLoadsPerThread:   loads,
			GlobalStoresPerThread:  stores,
			TransactionsPerRequest: txns,
			BytesPerThread:         bytes,
			RegsPerThread:          regs,
			SharedMemPerBlock:      shmem,
			SyncsPerThread:         syncs,
			IrregularFraction:      irregular,
		},
	}
}

func distinctArrays(k *skeleton.Kernel) int {
	seen := make(map[*skeleton.Array]bool)
	for _, ac := range k.Accesses() {
		seen[ac.Array] = true
	}
	return len(seen)
}

func absInt64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// StencilInfo describes the stencil structure of a kernel, for
// clients (like the temporal-fusion explorer) that need the reuse
// radius rather than the synthesized characteristics.
type StencilInfo struct {
	// Radius is the maximum constant offset along the block x/y
	// dimensions across all stencil-group loads.
	Radius [2]int64
	// Arrays is the number of arrays with stencil reuse.
	Arrays int
}

// Stencil analyzes the kernel's reuse structure. ok is false when the
// kernel has no stencil groups (no staging opportunity).
func Stencil(k *skeleton.Kernel, arch gpu.Arch) (StencilInfo, bool) {
	if err := k.Validate(); err != nil {
		return StencilInfo{}, false
	}
	if len(k.ParallelLoops()) == 0 {
		return StencilInfo{}, false
	}
	an := analyzeKernel(k, arch)
	if !an.stageable() {
		return StencilInfo{}, false
	}
	info := StencilInfo{Arrays: len(an.groups)}
	for _, g := range an.groups {
		if g.radius[0] > info.Radius[0] {
			info.Radius[0] = g.radius[0]
		}
		if g.radius[1] > info.Radius[1] {
			info.Radius[1] = g.radius[1]
		}
	}
	return info, true
}

// Best explores the kernel and returns the variant with the fastest
// analytical projection, together with that projection — GROPHECY's
// "best achievable performance and the transformations necessary to
// reach that performance".
func Best(k *skeleton.Kernel, arch gpu.Arch) (Variant, perfmodel.Projection, error) {
	return BestCtx(context.Background(), k, arch)
}

// BestCtx is Best under a "transform.best" trace span (when the
// context carries a tracer) recording how many variants the
// exploration considered.
//
// The winning variant's projection is memoized alongside the
// enumeration (cache.go), so a warm call skips both the exploration
// and the per-candidate analytical projection. Cold calls with large
// candidate sets evaluate candidates on a bounded worker pool with a
// deterministic index-order reduction (perfmodel.ProjectBestParallel),
// so the winner — and therefore the report — is bit-identical to the
// sequential path.
func BestCtx(ctx context.Context, k *skeleton.Kernel, arch gpu.Arch) (Variant, perfmodel.Projection, error) {
	_, span := trace.Start(ctx, "transform.best", trace.String("kernel", k.Name))
	defer span.End()
	e, err := cachedEntry(k, arch)
	if err != nil {
		return Variant{}, perfmodel.Projection{}, err
	}
	span.SetAttr(trace.Int("variants", int64(len(e.variants))))

	e.mu.Lock()
	if e.bestOK {
		v, proj := e.variants[e.bestIdx], e.best
		e.mu.Unlock()
		span.SetAttr(trace.String("variant", v.Name))
		return v, proj, nil
	}
	e.mu.Unlock()

	chars := make([]perfmodel.Characteristics, len(e.variants))
	for i, v := range e.variants {
		chars[i] = v.Ch
	}
	proj, idx, err := perfmodel.ProjectBestParallel(arch, chars, bestWorkers(len(chars)))
	if err != nil {
		return Variant{}, perfmodel.Projection{}, fmt.Errorf("transform: kernel %q: %w", k.Name, err)
	}
	e.mu.Lock()
	e.best, e.bestIdx, e.bestOK = proj, idx, true
	e.mu.Unlock()
	span.SetAttr(trace.String("variant", e.variants[idx].Name))
	return e.variants[idx], proj, nil
}

// parallelThreshold is the candidate count below which the projection
// stays sequential: spawning workers costs more than projecting a
// handful of candidates.
const parallelThreshold = 16

// bestWorkers sizes the candidate-evaluation worker pool.
func bestWorkers(candidates int) int {
	if candidates < parallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}
