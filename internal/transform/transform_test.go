package transform

import (
	"strings"
	"testing"

	"grophecy/internal/gpu"
	"grophecy/internal/perfmodel"
	"grophecy/internal/skeleton"
)

// stencilKernel builds a HotSpot-like 5-point stencil.
func stencilKernel(n int64) *skeleton.Kernel {
	in := skeleton.NewArray("in", skeleton.Float32, n, n)
	power := skeleton.NewArray("power", skeleton.Float32, n, n)
	out := skeleton.NewArray("out", skeleton.Float32, n, n)
	return &skeleton.Kernel{
		Name:  "stencil",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n), skeleton.ParLoop("j", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.IdxPlus("i", -1), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.IdxPlus("i", 1), skeleton.Idx("j")),
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.IdxPlus("j", -1)),
				skeleton.LoadOf(in, skeleton.Idx("i"), skeleton.IdxPlus("j", 1)),
				skeleton.LoadOf(power, skeleton.Idx("i"), skeleton.Idx("j")),
				skeleton.StoreOf(out, skeleton.Idx("i"), skeleton.Idx("j")),
			},
			Flops:           12,
			Transcendentals: 1,
		}},
	}
}

// irregularKernel builds a CFD-like kernel with indirect neighbor loads.
func irregularKernel(n int64) *skeleton.Kernel {
	vars := skeleton.NewArray("variables", skeleton.Float32, n)
	nb := skeleton.NewArray("neighbors", skeleton.Int32, n)
	out := skeleton.NewArray("fluxes", skeleton.Float32, n)
	return &skeleton.Kernel{
		Name:  "flux",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(nb, skeleton.Idx("i")),
				skeleton.LoadOf(vars, skeleton.IdxIrregular()),
				skeleton.LoadOf(vars, skeleton.Idx("i")),
				skeleton.StoreOf(out, skeleton.Idx("i")),
			},
			Flops: 40,
		}},
	}
}

func TestEnumerateProducesLaunchableVariants(t *testing.T) {
	arch := gpu.QuadroFX5600()
	variants, err := Enumerate(stencilKernel(1024), arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) == 0 {
		t.Fatal("no variants")
	}
	for _, v := range variants {
		if err := v.Ch.Validate(); err != nil {
			t.Errorf("%s: invalid characteristics: %v", v.Name, err)
		}
		if v.Ch.Threads != 1024*1024 {
			t.Errorf("%s: threads = %d", v.Name, v.Ch.Threads)
		}
		if v.BlockSize > arch.MaxThreadsPerBlock {
			t.Errorf("%s: block size %d exceeds limit", v.Name, v.BlockSize)
		}
		if v.BlockDims[0]*v.BlockDims[1] != v.BlockSize {
			t.Errorf("%s: block dims %v inconsistent with size %d", v.Name, v.BlockDims, v.BlockSize)
		}
	}
}

func TestEnumerateIncludesTiledVariantsForStencil(t *testing.T) {
	variants, err := Enumerate(stencilKernel(1024), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	tiled, plain := 0, 0
	for _, v := range variants {
		if v.SharedStaging {
			tiled++
			if v.Ch.SharedMemPerBlock == 0 {
				t.Errorf("%s: tiled variant has no shared memory", v.Name)
			}
			if v.Ch.SyncsPerThread == 0 {
				t.Errorf("%s: tiled variant has no syncs", v.Name)
			}
			if !strings.Contains(v.Name, "tiled") {
				t.Errorf("tiled variant name %q lacks marker", v.Name)
			}
		} else {
			plain++
		}
	}
	if tiled == 0 || plain == 0 {
		t.Errorf("want both tiled (%d) and plain (%d) variants", tiled, plain)
	}
}

func TestTilingReducesGlobalLoads(t *testing.T) {
	variants, err := Enumerate(stencilKernel(1024), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	var tiled, plain *Variant
	for i := range variants {
		v := &variants[i]
		if v.BlockSize != 256 || v.Unroll != 1 {
			continue
		}
		if v.SharedStaging {
			tiled = v
		} else {
			plain = v
		}
	}
	if tiled == nil || plain == nil {
		t.Fatal("missing bs256 variants")
	}
	if tiled.Ch.GlobalLoadsPerThread >= plain.Ch.GlobalLoadsPerThread {
		t.Errorf("tiling did not reduce loads: %v vs %v",
			tiled.Ch.GlobalLoadsPerThread, plain.Ch.GlobalLoadsPerThread)
	}
	if tiled.Ch.BytesPerThread >= plain.Ch.BytesPerThread {
		t.Errorf("tiling did not reduce traffic: %v vs %v",
			tiled.Ch.BytesPerThread, plain.Ch.BytesPerThread)
	}
}

func TestNoTiledVariantsWithoutReuse(t *testing.T) {
	// Vector addition has no reuse, so no staging variants.
	n := int64(1 << 20)
	a := skeleton.NewArray("a", skeleton.Float32, n)
	b := skeleton.NewArray("b", skeleton.Float32, n)
	c := skeleton.NewArray("c", skeleton.Float32, n)
	k := &skeleton.Kernel{
		Name:  "vecadd",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(a, skeleton.Idx("i")),
				skeleton.LoadOf(b, skeleton.Idx("i")),
				skeleton.StoreOf(c, skeleton.Idx("i")),
			},
			Flops: 1,
		}},
	}
	variants, err := Enumerate(k, gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.SharedStaging {
			t.Errorf("staging variant %q for reuse-free kernel", v.Name)
		}
	}
}

func TestIrregularFractionRecorded(t *testing.T) {
	variants, err := Enumerate(irregularKernel(100000), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.Ch.IrregularFraction <= 0 || v.Ch.IrregularFraction >= 1 {
			t.Errorf("%s: irregular fraction = %v, want in (0,1)", v.Name, v.Ch.IrregularFraction)
		}
	}
}

func TestCoalescedAccessGetsMinimalTransactions(t *testing.T) {
	// Row-major [i][j] with j innermost: stride 1, float32 -> 2
	// transactions per warp request on G80.
	variants, err := Enumerate(stencilKernel(1024), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.SharedStaging {
			continue
		}
		if v.Ch.TransactionsPerRequest < 1 || v.Ch.TransactionsPerRequest > 4 {
			t.Errorf("%s: transactions = %v for coalesced stencil", v.Name, v.Ch.TransactionsPerRequest)
		}
	}
}

func TestTransposedAccessCostsMoreTransactions(t *testing.T) {
	n := int64(1024)
	in := skeleton.NewArray("in", skeleton.Float32, n, n)
	out := skeleton.NewArray("out", skeleton.Float32, n, n)
	k := &skeleton.Kernel{
		Name:  "transpose",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n), skeleton.ParLoop("j", n)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				// Column-major read: j hits the slow dimension.
				skeleton.LoadOf(in, skeleton.Idx("j"), skeleton.Idx("i")),
				skeleton.StoreOf(out, skeleton.Idx("i"), skeleton.Idx("j")),
			},
			Flops: 1,
		}},
	}
	variants, err := Enumerate(k, gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.Ch.TransactionsPerRequest <= 2 {
			t.Errorf("%s: transactions = %v, transposed read should cost more",
				v.Name, v.Ch.TransactionsPerRequest)
		}
	}
}

func TestUnrollReducesCompInsts(t *testing.T) {
	n := int64(1 << 16)
	a := skeleton.NewArray("a", skeleton.Float32, n, 64)
	o := skeleton.NewArray("o", skeleton.Float32, n)
	k := &skeleton.Kernel{
		Name:  "reduce",
		Loops: []skeleton.Loop{skeleton.ParLoop("i", n), skeleton.SeqLoop("s", 64)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(a, skeleton.Idx("i"), skeleton.Idx("s")),
				skeleton.StoreOf(o, skeleton.Idx("i")),
			},
			Flops: 2,
		}},
	}
	variants, err := Enumerate(k, gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	var u1, u4 *Variant
	for i := range variants {
		v := &variants[i]
		if v.BlockSize != 256 {
			continue
		}
		switch v.Unroll {
		case 1:
			u1 = v
		case 4:
			u4 = v
		}
	}
	if u1 == nil || u4 == nil {
		t.Fatal("missing unroll variants")
	}
	if u4.Ch.CompInstsPerThread >= u1.Ch.CompInstsPerThread {
		t.Errorf("unroll4 (%v insts) not cheaper than unroll1 (%v)",
			u4.Ch.CompInstsPerThread, u1.Ch.CompInstsPerThread)
	}
}

func TestNoUnrollVariantsWithoutSequentialLoop(t *testing.T) {
	variants, err := Enumerate(stencilKernel(256), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.Unroll > 1 {
			t.Errorf("unroll variant %q for kernel with no sequential loops", v.Name)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	arch := gpu.QuadroFX5600()
	if _, err := Enumerate(&skeleton.Kernel{Name: "bad"}, arch); err == nil {
		t.Error("invalid kernel accepted")
	}
	// All-sequential kernel: no parallel loops.
	a := skeleton.NewArray("a", skeleton.Float32, 8)
	seqOnly := &skeleton.Kernel{
		Name:  "seq",
		Loops: []skeleton.Loop{skeleton.SeqLoop("s", 8)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{skeleton.LoadOf(a, skeleton.Idx("s"))},
			Flops:    1,
		}},
	}
	if _, err := Enumerate(seqOnly, arch); err == nil {
		t.Error("sequential-only kernel accepted")
	}
	if _, err := Enumerate(stencilKernel(64), gpu.Arch{}); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestBestPicksFastestVariant(t *testing.T) {
	arch := gpu.QuadroFX5600()
	k := stencilKernel(1024)
	best, proj, err := Best(k, arch)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Time <= 0 {
		t.Errorf("projection time = %v", proj.Time)
	}
	// Exhaustively verify no variant projects faster.
	variants, err := Enumerate(k, arch)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		p, err := perfmodel.Project(arch, v.Ch)
		if err != nil {
			continue
		}
		if p.Time < proj.Time-1e-15 {
			t.Errorf("variant %s (%v) beats Best %s (%v)", v.Name, p.Time, best.Name, proj.Time)
		}
	}
}

func TestBestVariantNamesAreStable(t *testing.T) {
	arch := gpu.QuadroFX5600()
	b1, _, err := Best(stencilKernel(1024), arch)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Best(stencilKernel(1024), arch)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Name != b2.Name {
		t.Errorf("Best unstable: %q vs %q", b1.Name, b2.Name)
	}
}

func TestDeterministicEnumerationOrder(t *testing.T) {
	a, err := Enumerate(stencilKernel(512), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(stencilKernel(512), gpu.QuadroFX5600())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("variant count unstable")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("order unstable at %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
}

func TestThreeParallelLoopKernel(t *testing.T) {
	// A 3D grid kernel: all three parallel loops map to the grid,
	// the last two to the block shape; the explorer must handle it.
	nx, ny, nz := int64(64), int64(64), int64(32)
	in := skeleton.NewArray("in", skeleton.Float32, nz, ny, nx)
	out := skeleton.NewArray("out", skeleton.Float32, nz, ny, nx)
	k := &skeleton.Kernel{
		Name: "grid3d",
		Loops: []skeleton.Loop{
			skeleton.ParLoop("z", nz), skeleton.ParLoop("y", ny), skeleton.ParLoop("x", nx),
		},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{
				skeleton.LoadOf(in, skeleton.Idx("z"), skeleton.Idx("y"), skeleton.Idx("x")),
				skeleton.StoreOf(out, skeleton.Idx("z"), skeleton.Idx("y"), skeleton.Idx("x")),
			},
			Flops: 4,
		}},
	}
	arch := gpu.QuadroFX5600()
	variants, err := Enumerate(k, arch)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		if v.Ch.Threads != nx*ny*nz {
			t.Errorf("%s: threads = %d, want %d", v.Name, v.Ch.Threads, nx*ny*nz)
		}
		// x is the thread-x var with unit stride: coalesced.
		if v.SharedStaging {
			continue
		}
		if v.Ch.TransactionsPerRequest > 2 {
			t.Errorf("%s: 3D unit-stride kernel got %v txns", v.Name, v.Ch.TransactionsPerRequest)
		}
	}
	if _, _, err := Best(k, arch); err != nil {
		t.Fatal(err)
	}
}

func TestStencilHelperRejectsInvalid(t *testing.T) {
	arch := gpu.QuadroFX5600()
	if _, ok := Stencil(&skeleton.Kernel{Name: "bad"}, arch); ok {
		t.Error("invalid kernel reported as stencil")
	}
	a := skeleton.NewArray("a", skeleton.Float32, 8)
	seqOnly := &skeleton.Kernel{
		Name:  "seq",
		Loops: []skeleton.Loop{skeleton.SeqLoop("s", 8)},
		Stmts: []skeleton.Statement{{
			Accesses: []skeleton.Access{skeleton.LoadOf(a, skeleton.Idx("s"))},
			Flops:    1,
		}},
	}
	if _, ok := Stencil(seqOnly, arch); ok {
		t.Error("sequential-only kernel reported as stencil")
	}
}
