// Package units provides byte-size and time helpers shared across the
// GROPHECY++ simulators and models.
//
// All simulator-internal times are plain float64 seconds: the models
// multiply and divide times by sizes and rates constantly, and float64
// seconds avoids the truncation and overflow pitfalls of time.Duration
// arithmetic. Conversion to time.Duration happens only at display
// boundaries.
package units

import (
	"fmt"
	"time"
)

// Byte-size constants, powers of two as used throughout the paper
// (transfer sweeps run over power-of-two sizes from 1 B to 512 MB).
const (
	B  int64 = 1
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Time unit constants in seconds.
const (
	Nanosecond  = 1e-9
	Microsecond = 1e-6
	Millisecond = 1e-3
	Second      = 1.0
)

// Duration converts a time in seconds to a time.Duration.
func Duration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// Seconds converts a time.Duration to float64 seconds.
func Seconds(d time.Duration) float64 {
	return d.Seconds()
}

// FormatBytes renders a byte count in the most natural binary unit,
// e.g. "512MB", "2KB", "17B". Sizes that are not whole in the chosen
// unit get one decimal place.
func FormatBytes(n int64) string {
	switch {
	case n >= GB:
		return formatUnit(n, GB, "GB")
	case n >= MB:
		return formatUnit(n, MB, "MB")
	case n >= KB:
		return formatUnit(n, KB, "KB")
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func formatUnit(n, unit int64, suffix string) string {
	if n%unit == 0 {
		return fmt.Sprintf("%d%s", n/unit, suffix)
	}
	return fmt.Sprintf("%.1f%s", float64(n)/float64(unit), suffix)
}

// FormatSeconds renders a time in seconds with an auto-selected unit:
// "1.9ms", "10.3us", "4.0s".
func FormatSeconds(s float64) string {
	abs := s
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.3gs", s)
	case abs >= Millisecond:
		return fmt.Sprintf("%.3gms", s/Millisecond)
	case abs >= Microsecond:
		return fmt.Sprintf("%.3gus", s/Microsecond)
	default:
		return fmt.Sprintf("%.3gns", s/Nanosecond)
	}
}

// MiB returns n mebibytes as a byte count.
func MiB(n float64) int64 { return int64(n * float64(MB)) }

// BytesToMB converts a byte count to mebibytes as a float.
func BytesToMB(n int64) float64 { return float64(n) / float64(MB) }

// GBps converts a bandwidth in GB/s (decimal gigabytes, as quoted in
// hardware data sheets and the paper) to bytes per second.
func GBps(gb float64) float64 { return gb * 1e9 }
