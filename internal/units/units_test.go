package units

import (
	"testing"
	"time"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{1023, "1023B"},
		{1024, "1KB"},
		{2048, "2KB"},
		{1536, "1.5KB"},
		{MB, "1MB"},
		{512 * MB, "512MB"},
		{GB, "1GB"},
		{3 * GB / 2, "1.5GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.0, "2s"},
		{0.0019, "1.9ms"},
		{10.3e-6, "10.3us"},
		{5e-9, "5ns"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration(1.5e-3)
	if d != 1500*time.Microsecond {
		t.Errorf("Duration(1.5ms) = %v", d)
	}
	if got := Seconds(d); got != 1.5e-3 {
		t.Errorf("Seconds round trip = %v", got)
	}
}

func TestMiB(t *testing.T) {
	if got := MiB(2); got != 2*MB {
		t.Errorf("MiB(2) = %d", got)
	}
	if got := MiB(0.5); got != MB/2 {
		t.Errorf("MiB(0.5) = %d", got)
	}
}

func TestBytesToMB(t *testing.T) {
	if got := BytesToMB(6 * MB); got != 6 {
		t.Errorf("BytesToMB(6MB) = %v", got)
	}
}

func TestGBps(t *testing.T) {
	if got := GBps(2.5); got != 2.5e9 {
		t.Errorf("GBps(2.5) = %v", got)
	}
}
