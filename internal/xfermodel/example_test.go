package xfermodel_test

import (
	"fmt"

	"grophecy/internal/pcie"
	"grophecy/internal/units"
	"grophecy/internal/xfermodel"
)

// Example shows the paper's §III-C procedure end to end: calibrate
// the linear PCIe model from two measurements per direction, then
// predict a transfer.
func Example() {
	bus := pcie.NewBus(pcie.DefaultConfig())

	model, err := xfermodel.CalibrateTwoPoint(bus, xfermodel.DefaultCalibration())
	if err != nil {
		panic(err)
	}

	// Predict the upload of an 8 MB image.
	t, err := model.Predict(pcie.HostToDevice, 8*units.MB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("calibrated from %d transfers\n", model.CalibrationTransfers)
	fmt.Printf("8MB upload predicted at %s\n", units.FormatSeconds(t))
	// Output:
	// calibrated from 40 transfers
	// 8MB upload predicted at 3.3ms
}

func ExampleModel_Predict() {
	m := xfermodel.Model{Alpha: 10e-6, Beta: 0.4e-9} // 10us + 2.5GB/s
	t0, _ := m.Predict(0)
	t1, _ := m.Predict(units.MB)
	fmt.Println(units.FormatSeconds(t0))
	fmt.Println(units.FormatSeconds(t1))
	// Output:
	// 10us
	// 429us
}

func ExamplePowerOfTwoSizes() {
	sizes, _ := xfermodel.PowerOfTwoSizes(1, 8)
	fmt.Println(sizes)
	// Output:
	// [1 2 4 8]
}
