// Piecewise transfer-time calibration: segmented α+β·d fits over a
// size grid.
//
// The paper's two-point model is deliberately global — one line per
// direction — and its own §III-C concedes the cost: pageable
// transfers are "mildly non-linear" at intermediate sizes (footnote
// 4), because the driver's bounce-buffer chunking and the small-
// upload command-buffer path each bend the curve in a different size
// band. A piecewise model keeps the paper's α+β structure but fits it
// per segment between adjacent grid knots, so each regime gets its
// own line while prediction stays two multiplies away.
package xfermodel

import (
	"fmt"

	"grophecy/internal/errdefs"
	"grophecy/internal/pcie"
	"grophecy/internal/units"
)

// PiecewiseModel predicts transfer time with one linear segment per
// adjacent knot pair, per direction. Sizes beyond the knot range are
// extrapolated with the nearest segment's line.
type PiecewiseModel struct {
	// Knots is the ascending measurement grid the segments were fitted
	// between; len(Knots)-1 segments per direction.
	Knots []int64 `json:"knots"`
	// Dir holds the per-direction segment models, indexed by
	// pcie.Direction then segment.
	Dir [pcie.NumDirections][]Model `json:"dir"`
	// Kind is the host memory kind the model was calibrated for.
	Kind pcie.MemoryKind `json:"kind"`
	// Summary is the equivalent global two-point model derived from
	// the same measurements (α from the first knot, β from the last),
	// for surfaces that render one α/β pair per direction.
	Summary BusModel `json:"summary"`
}

// segment returns the index of the segment covering size.
func (pm PiecewiseModel) segment(size int64) int {
	for i := 1; i < len(pm.Knots)-1; i++ {
		if size <= pm.Knots[i] {
			return i - 1
		}
	}
	return len(pm.Knots) - 2
}

// Predict returns the modeled time for one transfer. Invalid
// directions and sizes yield errdefs.ErrInvalidInput.
func (pm PiecewiseModel) Predict(dir pcie.Direction, size int64) (float64, error) {
	if !dir.Valid() {
		return 0, errdefs.Invalidf("xfermodel: invalid direction %d", dir)
	}
	if size < 0 {
		return 0, errdefs.Invalidf("xfermodel: negative transfer size %d", size)
	}
	if len(pm.Knots) < 2 {
		return 0, errdefs.Invalidf("xfermodel: piecewise model with %d knots", len(pm.Knots))
	}
	mPredictions.Inc()
	seg := pm.Dir[dir][pm.segment(size)]
	return seg.Alpha + seg.Beta*float64(size), nil
}

// Valid reports whether the model is structurally and physically
// plausible. Segment betas may legitimately differ per regime but a
// non-positive slope means the calibration went wrong.
func (pm PiecewiseModel) Valid() bool {
	if len(pm.Knots) < 2 {
		return false
	}
	for i := 1; i < len(pm.Knots); i++ {
		if pm.Knots[i] <= pm.Knots[i-1] {
			return false
		}
	}
	for d := 0; d < pcie.NumDirections; d++ {
		if len(pm.Dir[d]) != len(pm.Knots)-1 {
			return false
		}
		for _, m := range pm.Dir[d] {
			if m.Beta <= 0 {
				return false
			}
		}
	}
	return pm.Summary.Valid()
}

// DefaultPiecewiseGrid returns the default knot grid for cfg: the
// two-point sizes bracketing knots at the command-buffer, staging-
// chunk, and anomaly-band boundaries of the simulated driver stack —
// the three places where pageable transfer curves bend.
func DefaultPiecewiseGrid(cfg CalibrationConfig) []int64 {
	return cfg.Grid([]int64{
		cfg.SmallSize,
		2 * units.KB,
		64 * units.KB,
		4 * units.MB,
		cfg.LargeSize,
	})
}

// CalibratePiecewise measures cfg.Runs transfers at every knot of the
// grid (cfg.Sizes, or DefaultPiecewiseGrid) and fits one secant line
// per adjacent knot pair and direction: β is the slope between the
// two mean times, α the intercept. With exactly two knots this
// degenerates to a single global line fitted through both measured
// points.
func CalibratePiecewise(bus *pcie.Bus, cfg CalibrationConfig) (PiecewiseModel, error) {
	if err := cfg.Validate(); err != nil {
		return PiecewiseModel{}, err
	}
	knots := DefaultPiecewiseGrid(cfg)
	if len(knots) < 2 {
		return PiecewiseModel{}, errdefs.Invalidf("xfermodel: piecewise calibration needs at least two knots")
	}
	pm := PiecewiseModel{Knots: knots, Kind: cfg.Kind}
	pm.Summary = BusModel{Kind: cfg.Kind}
	for d := 0; d < pcie.NumDirections; d++ {
		dir := pcie.Direction(d)
		times := make([]float64, len(knots))
		for i, size := range knots {
			mean, err := bus.MeasureMean(dir, cfg.Kind, size, cfg.Runs)
			if err != nil {
				return PiecewiseModel{}, fmt.Errorf("xfermodel: %v knot %d: %w", dir, size, err)
			}
			times[i] = mean
			pm.Summary.CalibrationCost += float64(cfg.Runs) * mean
			pm.Summary.CalibrationTransfers += cfg.Runs
		}
		pm.Dir[d] = make([]Model, len(knots)-1)
		for i := range pm.Dir[d] {
			x0, x1 := float64(knots[i]), float64(knots[i+1])
			beta := (times[i+1] - times[i]) / (x1 - x0)
			alpha := times[i] - beta*x0
			if beta <= 0 {
				// A noisy draw can invert a short segment; fall back to
				// the global secant so the segment stays physical.
				beta = (times[len(times)-1] - times[0]) / (float64(knots[len(knots)-1]) - x0)
				alpha = times[i] - beta*x0
			}
			pm.Dir[d][i] = Model{Alpha: alpha, Beta: beta}
		}
		// The global summary mirrors the paper's two-point definition
		// on the same measurements: α from the smallest knot, β from
		// the largest.
		pm.Summary.Dir[d] = Model{
			Alpha: times[0],
			Beta:  times[len(times)-1] / float64(knots[len(knots)-1]),
		}
	}
	if !pm.Valid() {
		return PiecewiseModel{}, fmt.Errorf("%w: piecewise calibration produced implausible parameters",
			errdefs.ErrCalibrationFailed)
	}
	mCalibrations.Inc()
	return pm, nil
}
