// Resilient calibration: the hardened counterpart of
// CalibrateTwoPoint, built on the internal/measure layer.
//
// The paper's calibration is deliberately minimal — two sizes, ten
// runs each (§III-C) — which is exactly why it is fragile: one stuck
// transfer or one outlier burst lands directly in alpha or beta. The
// resilient path keeps the two-point structure but measures each
// point robustly and, when a point cannot be measured at all, walks a
// degradation ladder instead of failing the whole pipeline:
//
//  1. measure the requested size (robust estimator, retries,
//     deadline);
//  2. fall back to the nearest healthy size — halving the large
//     point down to a few megabytes (footnote 5: "any size larger
//     than a few megabytes would be sufficient"), doubling the small
//     point up to a few kilobytes — and rescale;
//  3. fall back to a conservative default model for that direction,
//     with an explicit warning in the report.
//
// Every rung taken is recorded in Health.Degradations so reports can
// say precisely how trustworthy the model is.
package xfermodel

import (
	"context"
	"fmt"

	"grophecy/internal/errdefs"
	"grophecy/internal/measure"
	"grophecy/internal/obs"
	"grophecy/internal/pcie"
	"grophecy/internal/trace"
	"grophecy/internal/units"
)

// Health records what the resilient calibration had to do to produce
// a model.
type Health struct {
	// Degradations lists, in order, every fallback taken. Empty means
	// a clean calibration.
	Degradations []string
	// Retries is the total transient retries absorbed.
	Retries int
	// Conservative marks directions that fell all the way back to the
	// conservative default model, indexed by pcie.Direction.
	Conservative [pcie.NumDirections]bool
}

// Degraded reports whether any fallback was taken.
func (h *Health) Degraded() bool { return len(h.Degradations) > 0 }

// note records one degradation.
func (h *Health) note(format string, args ...any) {
	h.Degradations = append(h.Degradations, fmt.Sprintf(format, args...))
}

// ConservativeModel is the last rung of the degradation ladder: a
// deliberately pessimistic transfer model (high latency, low
// bandwidth) so that projections made with it under-promise rather
// than over-promise GPU benefit.
func ConservativeModel() Model {
	return Model{Alpha: 50e-6, Beta: 1 / units.GBps(1.0)}
}

// smallLadder returns the fallback sizes for the alpha point: the
// requested size, then doublings up to 16x (alpha is a latency
// measurement, so any size in the latency-dominated regime works).
func smallLadder(size int64) []int64 {
	out := []int64{size}
	for i := 0; i < 4; i++ {
		size *= 2
		out = append(out, size)
	}
	return out
}

// largeLadder returns the fallback sizes for the beta point: the
// requested size, then halvings while the size stays in the
// bandwidth-dominated regime (>= 4 MB, per the paper's footnote 5).
func largeLadder(size int64) []int64 {
	out := []int64{size}
	for size/2 >= 4*units.MB {
		size /= 2
		out = append(out, size)
	}
	return out
}

// measurePoint walks one ladder until a size measures successfully.
// It returns the winning size and its robust estimate; err is non-nil
// only when every rung failed (the last error is returned).
func measurePoint(ctx context.Context, meter *measure.Meter, src measure.Source,
	dir pcie.Direction, kind pcie.MemoryKind, ladder []int64, what string, h *Health,
) (int64, measure.Result, error) {
	var lastErr error
	for i, size := range ladder {
		res, err := meter.MeasureTransfer(ctx, src, dir, kind, size)
		if err == nil {
			if i > 0 {
				h.note("%v %s point: fell back from %s to %s after %v",
					dir, what, units.FormatBytes(ladder[0]), units.FormatBytes(size), lastErr)
				obs.Log(ctx).Warn("calibration point fell back to another size",
					"dir", dir.String(), "point", what,
					"requested", units.FormatBytes(ladder[0]),
					"used", units.FormatBytes(size),
					"attempts", i+1, "retries", h.Retries+res.Retries,
					"err", lastErr.Error())
			}
			h.Retries += res.Retries
			return size, res, nil
		}
		h.Retries += res.Retries
		lastErr = err
		if ctx.Err() != nil {
			break // cancelled: no point walking further rungs
		}
	}
	if ctx.Err() == nil { // cancellation is propagation, not degradation
		obs.Log(ctx).Warn("calibration point unmeasurable at every ladder size",
			"dir", dir.String(), "point", what,
			"attempts", len(ladder), "retries", h.Retries,
			"err", lastErr.Error())
	}
	return 0, measure.Result{}, lastErr
}

// CalibrateResilient derives a BusModel from src using the paper's
// two-point scheme hardened by the measure layer and the degradation
// ladder. It fails (errdefs.ErrCalibrationFailed) only when even the
// conservative fallback cannot produce a plausible model, or with
// errdefs.ErrMeasureTimeout when ctx is cancelled mid-calibration.
func CalibrateResilient(ctx context.Context, meter *measure.Meter, src measure.Source, cfg CalibrationConfig) (BusModel, *Health, error) {
	if err := cfg.Validate(); err != nil {
		return BusModel{}, nil, err
	}
	if meter == nil || src == nil {
		return BusModel{}, nil, errdefs.Invalidf("xfermodel: resilient calibration needs a meter and a source")
	}
	ctx = obs.WithPhase(ctx, "calibrate")
	ctx, span := trace.Start(ctx, "xfermodel.calibrate", trace.String("scheme", "resilient two-point"))
	defer span.End()
	h := &Health{}
	bm := BusModel{Kind: cfg.Kind}
	for d := 0; d < pcie.NumDirections; d++ {
		dir := pcie.Direction(d)

		_, small, errS := measurePoint(ctx, meter, src, dir, cfg.Kind,
			smallLadder(cfg.SmallSize), "small", h)
		sizeL, large, errL := measurePoint(ctx, meter, src, dir, cfg.Kind,
			largeLadder(cfg.LargeSize), "large", h)
		if ctx.Err() != nil {
			return BusModel{}, h, fmt.Errorf("%w: calibration cancelled: %v",
				errdefs.ErrMeasureTimeout, ctx.Err())
		}

		m := Model{}
		switch {
		case errS == nil && errL == nil:
			m = Model{Alpha: small.Value, Beta: large.Value / float64(sizeL)}
		case errS == nil:
			// Beta unmeasurable: conservative bandwidth, measured alpha.
			m = Model{Alpha: small.Value, Beta: ConservativeModel().Beta}
			h.Conservative[d] = true
			h.note("%v large point unmeasurable (%v): using conservative bandwidth %s",
				dir, errL, m)
			obs.Log(ctx).Warn("calibration degraded to conservative bandwidth",
				"dir", dir.String(), "retries", h.Retries, "model", m.String(), "err", errL.Error())
		case errL == nil:
			// Alpha unmeasurable: bound it by the large measurement's
			// per-transfer floor via the conservative default.
			m = Model{Alpha: ConservativeModel().Alpha, Beta: large.Value / float64(sizeL)}
			h.Conservative[d] = true
			h.note("%v small point unmeasurable (%v): using conservative latency %s",
				dir, errS, m)
			obs.Log(ctx).Warn("calibration degraded to conservative latency",
				"dir", dir.String(), "retries", h.Retries, "model", m.String(), "err", errS.Error())
		default:
			m = ConservativeModel()
			h.Conservative[d] = true
			h.note("%v calibration unmeasurable (small: %v; large: %v): using conservative default %s",
				dir, errS, errL, m)
			obs.Log(ctx).Warn("calibration degraded to the conservative default model",
				"dir", dir.String(), "retries", h.Retries, "model", m.String(),
				"small_err", errS.Error(), "large_err", errL.Error())
		}
		bm.Dir[d] = m
		bm.CalibrationCost += small.SimTime + large.SimTime
		bm.CalibrationTransfers += small.Samples + large.Samples
	}
	if !bm.Valid() {
		return BusModel{}, h, fmt.Errorf("%w: resilient calibration produced implausible parameters",
			errdefs.ErrCalibrationFailed)
	}
	span.SetAttr(trace.Int("transfers", int64(bm.CalibrationTransfers)))
	span.SetAttr(trace.Float("bus_cost_s", bm.CalibrationCost))
	span.SetAttr(trace.Int("degradations", int64(len(h.Degradations))))
	mCalibrations.Inc()
	return bm, h, nil
}
