package xfermodel

import (
	"context"
	"errors"
	"math"
	"testing"

	"grophecy/internal/errdefs"
	"grophecy/internal/fault"
	"grophecy/internal/measure"
	"grophecy/internal/pcie"
	"grophecy/internal/units"
)

func newMeter(t *testing.T) *measure.Meter {
	t.Helper()
	m, err := measure.New(measure.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrateResilientCleanMatchesTwoPoint(t *testing.T) {
	cfg := DefaultCalibration()
	ref, err := CalibrateTwoPoint(pcie.NewBus(pcie.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	bm, h, err := CalibrateResilient(context.Background(), newMeter(t),
		pcie.NewBus(pcie.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded() {
		t.Fatalf("clean bus degraded: %v", h.Degradations)
	}
	for d := 0; d < pcie.NumDirections; d++ {
		// Different estimator and sample counts, same underlying bus:
		// parameters should agree within the bus's noise level.
		if rel := math.Abs(bm.Dir[d].Alpha-ref.Dir[d].Alpha) / ref.Dir[d].Alpha; rel > 0.10 {
			t.Errorf("%v alpha off by %.1f%%: %v vs %v",
				pcie.Direction(d), 100*rel, bm.Dir[d].Alpha, ref.Dir[d].Alpha)
		}
		if rel := math.Abs(bm.Dir[d].Beta-ref.Dir[d].Beta) / ref.Dir[d].Beta; rel > 0.10 {
			t.Errorf("%v beta off by %.1f%%: %v vs %v",
				pcie.Direction(d), 100*rel, bm.Dir[d].Beta, ref.Dir[d].Beta)
		}
	}
}

func TestCalibrateResilientUnderOutliers(t *testing.T) {
	cfg := DefaultCalibration()
	ref, err := CalibrateTwoPoint(pcie.NewBus(pcie.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 1% transients plus a 5% chance of 10x outlier bursts — the
	// ISSUE's acceptance scenario. The robust estimator must keep the
	// fit within a bounded band of the clean one.
	plan := fault.Plan{
		TransientProb: 0.01,
		OutlierProb:   0.05, OutlierScale: 10, OutlierBurst: 2,
		Seed: 99,
	}
	src := fault.NewBus(pcie.NewBus(pcie.DefaultConfig()), plan)
	bm, h, err := CalibrateResilient(context.Background(), newMeter(t), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < pcie.NumDirections; d++ {
		if h.Conservative[d] {
			t.Fatalf("%v fell back to conservative under mild faults: %v",
				pcie.Direction(d), h.Degradations)
		}
		if rel := math.Abs(bm.Dir[d].Beta-ref.Dir[d].Beta) / ref.Dir[d].Beta; rel > 0.25 {
			t.Errorf("%v beta off by %.1f%% under outliers (band is 25%%)",
				pcie.Direction(d), 100*rel)
		}
		// Alpha is a ~microsecond quantity measured through the same
		// faulty stream; allow a wider band but it must stay positive
		// and the model plausible.
		if !bm.Dir[d].Valid() {
			t.Errorf("%v model invalid: %v", pcie.Direction(d), bm.Dir[d])
		}
	}
}

// deadSource fails every transfer permanently.
type deadSource struct{}

func (deadSource) Transfer(pcie.Direction, pcie.MemoryKind, int64) (float64, error) {
	return 0, errors.New("bus unreachable")
}

func TestCalibrateResilientAllFailIsConservative(t *testing.T) {
	bm, h, err := CalibrateResilient(context.Background(), newMeter(t),
		deadSource{}, DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	want := ConservativeModel()
	for d := 0; d < pcie.NumDirections; d++ {
		if !h.Conservative[d] {
			t.Errorf("%v not flagged conservative", pcie.Direction(d))
		}
		if bm.Dir[d] != want {
			t.Errorf("%v model = %v, want conservative default %v",
				pcie.Direction(d), bm.Dir[d], want)
		}
	}
	if !h.Degraded() || len(h.Degradations) != pcie.NumDirections {
		t.Errorf("degradations = %v, want one per direction", h.Degradations)
	}
}

// flakySizeSource fails permanently for one exact size, passing
// everything else through to a real bus.
type flakySizeSource struct {
	bus     *pcie.Bus
	badSize int64
}

func (s flakySizeSource) Transfer(dir pcie.Direction, kind pcie.MemoryKind, size int64) (float64, error) {
	if size == s.badSize {
		return 0, errors.New("transfer wedged at this size")
	}
	return s.bus.Transfer(dir, kind, size)
}

func TestCalibrateResilientLadderFallback(t *testing.T) {
	cfg := DefaultCalibration()
	src := flakySizeSource{bus: pcie.NewBus(pcie.DefaultConfig()), badSize: cfg.LargeSize}
	bm, h, err := CalibrateResilient(context.Background(), newMeter(t), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded() {
		t.Fatal("ladder fallback not recorded")
	}
	for d := 0; d < pcie.NumDirections; d++ {
		if h.Conservative[d] {
			t.Errorf("%v went conservative instead of walking the ladder", pcie.Direction(d))
		}
		if !bm.Dir[d].Valid() {
			t.Errorf("%v model invalid after fallback: %v", pcie.Direction(d), bm.Dir[d])
		}
	}
	// The fallback size must be the first halving, 256 MB.
	found := false
	for _, note := range h.Degradations {
		if want := units.FormatBytes(cfg.LargeSize / 2); len(note) > 0 &&
			containsAll(note, "large point", "fell back", want) {
			found = true
		}
	}
	if !found {
		t.Errorf("no large-point fallback note in %v", h.Degradations)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCalibrateResilientCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := CalibrateResilient(ctx, newMeter(t),
		pcie.NewBus(pcie.DefaultConfig()), DefaultCalibration())
	if !errors.Is(err, errdefs.ErrMeasureTimeout) {
		t.Fatalf("err = %v, want ErrMeasureTimeout", err)
	}
}

func TestCalibrateResilientRejectsNil(t *testing.T) {
	if _, _, err := CalibrateResilient(context.Background(), nil,
		pcie.NewBus(pcie.DefaultConfig()), DefaultCalibration()); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Errorf("nil meter: err = %v, want ErrInvalidInput", err)
	}
	if _, _, err := CalibrateResilient(context.Background(), newMeter(t),
		nil, DefaultCalibration()); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Errorf("nil source: err = %v, want ErrInvalidInput", err)
	}
}
