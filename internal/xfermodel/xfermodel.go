// Package xfermodel implements the paper's first contribution: a
// simple, accurate empirical model of CPU<->GPU transfer time over the
// PCIe bus (§III-C).
//
// The model is linear in the transfer size d:
//
//	T(d) = alpha + beta*d                          (Equation 1)
//
// where alpha is the fixed latency of sending the first byte and beta
// is the per-byte cost (the inverse of the transfer bandwidth). The
// two parameters are derived from only two measurements on the target
// system:
//
//   - alpha = mean time of a 1-byte transfer over 10 runs,
//   - beta  = mean time of a 512 MB transfer over 10 runs, divided by
//     512 MB.
//
// Each direction (CPU-to-GPU, GPU-to-CPU) gets its own parameters,
// since real links are mildly asymmetric. GROPHECY++ assumes pinned
// host memory throughout (it is faster in all typical use cases,
// §III-C); the calibration kind is configurable for the pageable
// ablation.
//
// CalibrateLeastSquares is the ablation described in DESIGN.md §5: an
// ordinary least-squares fit over a full power-of-two sweep. It needs
// dozens of measurements instead of two and, as the benchmarks show,
// buys almost nothing — which is the point the paper makes by choosing
// the two-point scheme.
package xfermodel

import (
	"fmt"
	"math"

	"grophecy/internal/errdefs"
	"grophecy/internal/metrics"
	"grophecy/internal/pcie"
	"grophecy/internal/stats"
	"grophecy/internal/units"
)

// Transfer-model instruments.
var (
	mPredictions = metrics.Default.MustCounter("xfermodel_predictions_total",
		"transfer-time predictions served by calibrated models")
	mCalibrations = metrics.Default.MustCounter("xfermodel_calibrations_total",
		"bus calibrations performed (all schemes)")
)

// Model predicts the transfer time of one direction of the bus.
type Model struct {
	// Alpha is the fixed per-transfer latency in seconds.
	Alpha float64
	// Beta is the per-byte transfer cost in seconds/byte.
	Beta float64
}

// Predict returns the modeled transfer time in seconds for size
// bytes. Sizes come from workload data, so a negative size is
// reported as errdefs.ErrInvalidInput rather than a panic (error
// policy: see internal/errdefs).
func (m Model) Predict(size int64) (float64, error) {
	if size < 0 {
		return 0, errdefs.Invalidf("xfermodel: negative transfer size %d", size)
	}
	return m.Alpha + m.Beta*float64(size), nil
}

// Bandwidth returns the asymptotic bandwidth 1/Beta in bytes/second,
// or +Inf when Beta is zero.
func (m Model) Bandwidth() float64 {
	if m.Beta == 0 {
		return math.Inf(1)
	}
	return 1 / m.Beta
}

// String renders the model parameters in the units the paper quotes
// (alpha in microseconds, bandwidth in GB/s).
func (m Model) String() string {
	return fmt.Sprintf("T(d) = %.2fus + d/%.2fGB/s", m.Alpha/units.Microsecond, m.Bandwidth()/1e9)
}

// Valid reports whether the parameters are physically plausible.
func (m Model) Valid() bool {
	return m.Alpha > 0 && m.Beta > 0
}

// BusModel holds one Model per transfer direction plus provenance of
// the calibration.
type BusModel struct {
	// Dir is indexed by pcie.Direction.
	Dir [pcie.NumDirections]Model
	// Kind is the host memory kind the model was calibrated for.
	Kind pcie.MemoryKind
	// CalibrationCost is the simulated wall-clock time spent on the
	// calibration transfers, in seconds. Reported so users can see
	// that the two-point scheme is cheap.
	CalibrationCost float64
	// CalibrationTransfers is the number of transfers performed.
	CalibrationTransfers int
}

// Predict returns the modeled time for one transfer. Invalid
// directions and sizes yield errdefs.ErrInvalidInput.
func (bm BusModel) Predict(dir pcie.Direction, size int64) (float64, error) {
	if !dir.Valid() {
		return 0, errdefs.Invalidf("xfermodel: invalid direction %d", dir)
	}
	mPredictions.Inc()
	return bm.Dir[dir].Predict(size)
}

// Valid reports whether both directional models are plausible.
func (bm BusModel) Valid() bool {
	return bm.Dir[pcie.HostToDevice].Valid() && bm.Dir[pcie.DeviceToHost].Valid()
}

// CalibrationConfig controls how a model is derived from a bus.
type CalibrationConfig struct {
	// Runs is how many transfers are averaged per measurement point.
	// The paper uses 10 (§III-C).
	Runs int
	// SmallSize is the size used to measure alpha. The paper uses a
	// single byte.
	SmallSize int64
	// LargeSize is the size used to measure beta. The paper uses
	// 512 MB, chosen "rather arbitrarily; any size larger than a few
	// megabytes would be sufficient" (footnote 5).
	LargeSize int64
	// Kind is the host memory kind to calibrate for.
	Kind pcie.MemoryKind
	// Sizes, when non-empty, is an explicit ascending sample grid for
	// the grid-based calibration schemes (least-squares, piecewise).
	// The two-point scheme ignores it. Empty means each scheme derives
	// its own default grid from [SmallSize, LargeSize], so backends
	// can request a custom grid without forking the calibration path.
	Sizes []int64
}

// DefaultCalibration returns the paper's calibration settings: 10
// runs, 1 B and 512 MB points, pinned memory.
func DefaultCalibration() CalibrationConfig {
	return CalibrationConfig{
		Runs:      10,
		SmallSize: 1,
		LargeSize: 512 * units.MB,
		Kind:      pcie.Pinned,
	}
}

// Validate reports whether the calibration settings make sense.
func (c CalibrationConfig) Validate() error {
	if c.Runs <= 0 {
		return errdefs.Invalidf("xfermodel: calibration needs at least one run")
	}
	if c.SmallSize <= 0 {
		return errdefs.Invalidf("xfermodel: small calibration size must be positive")
	}
	if c.LargeSize <= c.SmallSize {
		return errdefs.Invalidf("xfermodel: large calibration size must exceed small size")
	}
	if !c.Kind.Valid() {
		return errdefs.Invalidf("xfermodel: invalid memory kind %d", c.Kind)
	}
	for i, s := range c.Sizes {
		if s <= 0 {
			return errdefs.Invalidf("xfermodel: non-positive sample size %d in grid", s)
		}
		if i > 0 && s <= c.Sizes[i-1] {
			return errdefs.Invalidf("xfermodel: sample grid must be strictly ascending (%d after %d)",
				s, c.Sizes[i-1])
		}
	}
	return nil
}

// Grid returns the effective sample grid for grid-based calibration
// schemes: the explicit Sizes when set, otherwise def (which schemes
// derive from [SmallSize, LargeSize]).
func (c CalibrationConfig) Grid(def []int64) []int64 {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	return def
}

// CalibrateTwoPoint derives a BusModel from bus using the paper's
// two-measurement scheme, independently per direction. This is the
// procedure GROPHECY++ runs automatically on each new system.
func CalibrateTwoPoint(bus *pcie.Bus, cfg CalibrationConfig) (BusModel, error) {
	if err := cfg.Validate(); err != nil {
		return BusModel{}, err
	}
	bm := BusModel{Kind: cfg.Kind}
	for d := 0; d < pcie.NumDirections; d++ {
		dir := pcie.Direction(d)
		tSmall, err := bus.MeasureMean(dir, cfg.Kind, cfg.SmallSize, cfg.Runs)
		if err != nil {
			return BusModel{}, fmt.Errorf("xfermodel: %v small point: %w", dir, err)
		}
		tLarge, err := bus.MeasureMean(dir, cfg.Kind, cfg.LargeSize, cfg.Runs)
		if err != nil {
			return BusModel{}, fmt.Errorf("xfermodel: %v large point: %w", dir, err)
		}
		bm.Dir[d] = Model{
			Alpha: tSmall,
			Beta:  tLarge / float64(cfg.LargeSize),
		}
		bm.CalibrationCost += float64(cfg.Runs) * (tSmall + tLarge)
		bm.CalibrationTransfers += 2 * cfg.Runs
	}
	if !bm.Valid() {
		return BusModel{}, fmt.Errorf("%w: two-point calibration produced implausible parameters",
			errdefs.ErrCalibrationFailed)
	}
	mCalibrations.Inc()
	return bm, nil
}

// CalibrateLeastSquares derives a BusModel by measuring every size in
// sizes (cfg.Runs transfers each) and fitting T = alpha + beta*d by
// ordinary least squares, per direction. It is the expensive ablation
// against CalibrateTwoPoint.
//
// Note that an unweighted fit over a power-of-two sweep is dominated
// by the largest sizes, so its alpha can come out slightly negative;
// in that case alpha is clamped to the smallest measured time to keep
// the model physical.
func CalibrateLeastSquares(bus *pcie.Bus, cfg CalibrationConfig, sizes []int64) (BusModel, error) {
	if err := cfg.Validate(); err != nil {
		return BusModel{}, err
	}
	if len(sizes) < 2 {
		return BusModel{}, errdefs.Invalidf("xfermodel: least-squares calibration needs at least two sizes")
	}
	bm := BusModel{Kind: cfg.Kind}
	for d := 0; d < pcie.NumDirections; d++ {
		dir := pcie.Direction(d)
		xs := make([]float64, len(sizes))
		ys := make([]float64, len(sizes))
		minTime := 0.0
		for i, size := range sizes {
			if size < 0 {
				return BusModel{}, errdefs.Invalidf("xfermodel: negative sweep size %d", size)
			}
			mean, err := bus.MeasureMean(dir, cfg.Kind, size, cfg.Runs)
			if err != nil {
				return BusModel{}, fmt.Errorf("xfermodel: %v sweep point %d: %w", dir, size, err)
			}
			xs[i] = float64(size)
			ys[i] = mean
			if i == 0 || mean < minTime {
				minTime = mean
			}
			bm.CalibrationCost += float64(cfg.Runs) * mean
			bm.CalibrationTransfers += cfg.Runs
		}
		fit, err := stats.FitLine(xs, ys)
		if err != nil {
			return BusModel{}, fmt.Errorf("xfermodel: %v fit failed: %w", dir, err)
		}
		alpha := fit.Intercept
		if alpha <= 0 {
			alpha = minTime
		}
		bm.Dir[d] = Model{Alpha: alpha, Beta: fit.Slope}
	}
	if !bm.Valid() {
		return BusModel{}, fmt.Errorf("%w: least-squares calibration produced implausible parameters",
			errdefs.ErrCalibrationFailed)
	}
	mCalibrations.Inc()
	return bm, nil
}

// PowerOfTwoSizes returns all powers of two from min to max inclusive
// (min and max are rounded to themselves; both must already be powers
// of two). This is the sweep used by the paper's validation (1 B to
// 512 MB, §V-A). Bounds come from CLI flags and experiment tables, so
// invalid ones yield errdefs.ErrInvalidInput.
func PowerOfTwoSizes(min, max int64) ([]int64, error) {
	if min <= 0 || max < min {
		return nil, errdefs.Invalidf("xfermodel: invalid size range [%d, %d]", min, max)
	}
	if min&(min-1) != 0 || max&(max-1) != 0 {
		return nil, errdefs.Invalidf("xfermodel: size bounds %d, %d must be powers of two", min, max)
	}
	var sizes []int64
	for s := min; s <= max; s <<= 1 {
		sizes = append(sizes, s)
		if s > max>>1 {
			break // avoid overflow on the final shift
		}
	}
	return sizes, nil
}

// ValidationPoint records one size/direction comparison between the
// model and fresh measurements.
type ValidationPoint struct {
	Dir       pcie.Direction
	Size      int64
	Predicted float64 // seconds
	Measured  float64 // seconds, mean over the validation runs
	// ErrMag is |Predicted-Measured|/Measured, the paper's error
	// magnitude, as a fraction.
	ErrMag float64
}

// Validate measures every size in sizes in both directions (runs
// transfers each, arithmetic mean) and compares against the model,
// reproducing the paper's §V-A validation sweep.
func Validate(bus *pcie.Bus, bm BusModel, sizes []int64, runs int) ([]ValidationPoint, error) {
	if runs <= 0 {
		return nil, errdefs.Invalidf("xfermodel: Validate needs at least one run, got %d", runs)
	}
	points := make([]ValidationPoint, 0, len(sizes)*pcie.NumDirections)
	for d := 0; d < pcie.NumDirections; d++ {
		dir := pcie.Direction(d)
		for _, size := range sizes {
			measured, err := bus.MeasureMean(dir, bm.Kind, size, runs)
			if err != nil {
				return nil, err
			}
			predicted, err := bm.Predict(dir, size)
			if err != nil {
				return nil, err
			}
			points = append(points, ValidationPoint{
				Dir:       dir,
				Size:      size,
				Predicted: predicted,
				Measured:  measured,
				ErrMag:    stats.ErrorMagnitude(predicted, measured),
			})
		}
	}
	return points, nil
}

// SummarizeValidation aggregates validation points per direction,
// returning the mean and max error magnitude (the numbers quoted for
// Fig 4: mean 2.0%/0.8%, max 6.4%/3.3%).
type ValidationSummary struct {
	Dir     pcie.Direction
	MeanErr float64
	MaxErr  float64
	N       int
}

// SummarizeValidation computes per-direction summaries of points.
func SummarizeValidation(points []ValidationPoint) [pcie.NumDirections]ValidationSummary {
	var out [pcie.NumDirections]ValidationSummary
	for d := 0; d < pcie.NumDirections; d++ {
		out[d].Dir = pcie.Direction(d)
	}
	for _, p := range points {
		s := &out[p.Dir]
		s.N++
		s.MeanErr += p.ErrMag
		if p.ErrMag > s.MaxErr {
			s.MaxErr = p.ErrMag
		}
	}
	for d := range out {
		if out[d].N > 0 {
			out[d].MeanErr /= float64(out[d].N)
		}
	}
	return out
}
