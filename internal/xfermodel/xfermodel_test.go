package xfermodel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"grophecy/internal/errdefs"
	"grophecy/internal/pcie"
	"grophecy/internal/stats"
	"grophecy/internal/units"
)

func calibrated(t *testing.T) (*pcie.Bus, BusModel) {
	t.Helper()
	bus := pcie.NewBus(pcie.DefaultConfig())
	bm, err := CalibrateTwoPoint(bus, DefaultCalibration())
	if err != nil {
		t.Fatalf("calibration failed: %v", err)
	}
	return bus, bm
}

func TestModelPredictLinear(t *testing.T) {
	m := Model{Alpha: 10e-6, Beta: 1e-9}
	if got, err := m.Predict(0); err != nil || got != 10e-6 {
		t.Errorf("Predict(0) = %v, %v", got, err)
	}
	if got, err := m.Predict(1000); err != nil || math.Abs(got-11e-6) > 1e-18 {
		t.Errorf("Predict(1000) = %v, %v, want 11us", got, err)
	}
}

func TestModelPredictRejectsNegative(t *testing.T) {
	if _, err := (Model{Alpha: 1, Beta: 1}).Predict(-1); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Fatalf("Predict(-1) err = %v, want ErrInvalidInput", err)
	}
}

func TestModelBandwidth(t *testing.T) {
	m := Model{Alpha: 10e-6, Beta: 4e-10}
	if got := m.Bandwidth(); math.Abs(got-2.5e9) > 1 {
		t.Errorf("Bandwidth = %v, want 2.5e9", got)
	}
	if !math.IsInf(Model{}.Bandwidth(), 1) {
		t.Error("zero-beta bandwidth should be +Inf")
	}
}

func TestModelString(t *testing.T) {
	m := Model{Alpha: 10e-6, Beta: 4e-10}
	if got := m.String(); got != "T(d) = 10.00us + d/2.50GB/s" {
		t.Errorf("String = %q", got)
	}
}

func TestModelValid(t *testing.T) {
	if (Model{}).Valid() {
		t.Error("zero model should be invalid")
	}
	if !(Model{Alpha: 1e-6, Beta: 1e-10}).Valid() {
		t.Error("plausible model should be valid")
	}
}

func TestDefaultCalibrationMatchesPaper(t *testing.T) {
	cfg := DefaultCalibration()
	if cfg.Runs != 10 {
		t.Errorf("Runs = %d, want 10", cfg.Runs)
	}
	if cfg.SmallSize != 1 {
		t.Errorf("SmallSize = %d, want 1", cfg.SmallSize)
	}
	if cfg.LargeSize != 512*units.MB {
		t.Errorf("LargeSize = %d, want 512MB", cfg.LargeSize)
	}
	if cfg.Kind != pcie.Pinned {
		t.Errorf("Kind = %v, want pinned", cfg.Kind)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default calibration invalid: %v", err)
	}
}

func TestCalibrationConfigValidate(t *testing.T) {
	bad := []CalibrationConfig{
		{Runs: 0, SmallSize: 1, LargeSize: 2, Kind: pcie.Pinned},
		{Runs: 1, SmallSize: 0, LargeSize: 2, Kind: pcie.Pinned},
		{Runs: 1, SmallSize: 4, LargeSize: 4, Kind: pcie.Pinned},
		{Runs: 1, SmallSize: 1, LargeSize: 2, Kind: pcie.MemoryKind(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCalibrateTwoPointRecoversBusParameters(t *testing.T) {
	bus, bm := calibrated(t)
	cfg := bus.Config()
	for d := 0; d < pcie.NumDirections; d++ {
		m := bm.Dir[d]
		// Alpha should be within noise (~15%) of the true setup
		// latency; beta within 2% of the true inverse bandwidth.
		trueAlpha := cfg.Pinned[d].SetupLatency
		if e := stats.ErrorMagnitude(m.Alpha, trueAlpha); e > 0.15 {
			t.Errorf("%v: alpha %v vs true %v (err %v)", pcie.Direction(d), m.Alpha, trueAlpha, e)
		}
		trueBeta := 1 / cfg.Pinned[d].Bandwidth
		if e := stats.ErrorMagnitude(m.Beta, trueBeta); e > 0.02 {
			t.Errorf("%v: beta %v vs true %v (err %v)", pcie.Direction(d), m.Beta, trueBeta, e)
		}
	}
}

func TestCalibrationMatchesPaperMagnitudes(t *testing.T) {
	// Paper §III-C: "alpha is on the order of 10us and the transfer
	// bandwidth (1/beta) is approximately 2.5 GB/s."
	_, bm := calibrated(t)
	for d := 0; d < pcie.NumDirections; d++ {
		m := bm.Dir[d]
		if m.Alpha < 5e-6 || m.Alpha > 25e-6 {
			t.Errorf("%v alpha = %v, want order of 10us", pcie.Direction(d), m.Alpha)
		}
		bw := m.Bandwidth()
		if bw < 2.0e9 || bw > 3.0e9 {
			t.Errorf("%v bandwidth = %v, want ~2.5GB/s", pcie.Direction(d), bw)
		}
	}
}

func TestCalibrationCostAccounting(t *testing.T) {
	_, bm := calibrated(t)
	if bm.CalibrationTransfers != 40 { // 2 sizes x 10 runs x 2 directions
		t.Errorf("CalibrationTransfers = %d, want 40", bm.CalibrationTransfers)
	}
	// Dominated by 20 transfers of 512MB at ~2.5GB/s: ~4s total.
	if bm.CalibrationCost < 2 || bm.CalibrationCost > 10 {
		t.Errorf("CalibrationCost = %v s, want a few seconds", bm.CalibrationCost)
	}
}

func TestCalibrateRejectsBadConfig(t *testing.T) {
	bus := pcie.NewBus(pcie.DefaultConfig())
	if _, err := CalibrateTwoPoint(bus, CalibrationConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := CalibrateLeastSquares(bus, CalibrationConfig{}, []int64{1, 2}); err == nil {
		t.Error("zero config accepted by least squares")
	}
	if _, err := CalibrateLeastSquares(bus, DefaultCalibration(), []int64{1}); err == nil {
		t.Error("single-point least squares accepted")
	}
	if _, err := CalibrateLeastSquares(bus, DefaultCalibration(), []int64{-1, 2}); err == nil {
		t.Error("negative sweep size accepted")
	}
}

func TestBusModelPredictRejectsBadDirection(t *testing.T) {
	_, bm := calibrated(t)
	if _, err := bm.Predict(pcie.Direction(5), 100); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Fatalf("bad direction err = %v, want ErrInvalidInput", err)
	}
}

func TestPredictionAccuracyMatchesFig4(t *testing.T) {
	// Reproduce the §V-A validation: sweep 1B..512MB, 10 runs per
	// size. Paper: max error 6.4% (H2D) / 3.3% (D2H); mean 2.0% /
	// 0.8%. Our simulated bus should land in the same regime: mean
	// under 5%, max under 15%, and near-zero error above 1MB.
	bus, bm := calibrated(t)
	sizes, err := PowerOfTwoSizes(1, 512*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Validate(bus, bm, sizes, 10)
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeValidation(points)
	for _, s := range sums {
		if s.MeanErr > 0.05 {
			t.Errorf("%v mean error %v, want < 5%%", s.Dir, s.MeanErr)
		}
		if s.MaxErr > 0.15 {
			t.Errorf("%v max error %v, want < 15%%", s.Dir, s.MaxErr)
		}
	}
	for _, p := range points {
		if p.Size > units.MB && p.ErrMag > 0.02 {
			t.Errorf("%v %s: error %v should be ~0 above 1MB",
				p.Dir, units.FormatBytes(p.Size), p.ErrMag)
		}
	}
}

func TestErrorLargerAtSmallSizes(t *testing.T) {
	// Fig 4 shape: relative error decreases with size.
	bus, bm := calibrated(t)
	sizes, err := PowerOfTwoSizes(1, 512*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Validate(bus, bm, sizes, 10)
	if err != nil {
		t.Fatal(err)
	}
	var small, large []float64
	for _, p := range points {
		if p.Size <= units.KB {
			small = append(small, p.ErrMag)
		} else if p.Size >= units.MB {
			large = append(large, p.ErrMag)
		}
	}
	if stats.Mean(small) <= stats.Mean(large) {
		t.Errorf("small-size mean error %v should exceed large-size %v",
			stats.Mean(small), stats.Mean(large))
	}
}

func TestLeastSquaresComparableToTwoPoint(t *testing.T) {
	cfg := pcie.DefaultConfig()
	busA := pcie.NewBus(cfg)
	busB := pcie.NewBus(cfg)
	two, err := CalibrateTwoPoint(busA, DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := PowerOfTwoSizes(1, 512*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := CalibrateLeastSquares(busB, DefaultCalibration(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Both should agree on beta within a couple percent; and LS must
	// be far more expensive to calibrate.
	for d := 0; d < pcie.NumDirections; d++ {
		if e := stats.ErrorMagnitude(ls.Dir[d].Beta, two.Dir[d].Beta); e > 0.03 {
			t.Errorf("%v: LS beta deviates %v from two-point", pcie.Direction(d), e)
		}
	}
	if ls.CalibrationTransfers <= two.CalibrationTransfers {
		t.Error("least squares should need more transfers than two-point")
	}
}

func TestPowerOfTwoSizes(t *testing.T) {
	sizes, err := PowerOfTwoSizes(1, 512*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 30 { // 2^0 .. 2^29
		t.Fatalf("len = %d, want 30", len(sizes))
	}
	if sizes[0] != 1 || sizes[len(sizes)-1] != 512*units.MB {
		t.Errorf("bounds = %d..%d", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[i-1]*2 {
			t.Errorf("sizes[%d] = %d not double of previous", i, sizes[i])
		}
	}
}

func TestPowerOfTwoSizesRejectsBadBounds(t *testing.T) {
	cases := []struct{ min, max int64 }{
		{0, 8}, {8, 4}, {3, 8}, {2, 12},
	}
	for _, c := range cases {
		if _, err := PowerOfTwoSizes(c.min, c.max); !errors.Is(err, errdefs.ErrInvalidInput) {
			t.Errorf("PowerOfTwoSizes(%d,%d) err = %v, want ErrInvalidInput", c.min, c.max, err)
		}
	}
}

func TestValidateRejectsZeroRuns(t *testing.T) {
	bus, bm := calibrated(t)
	if _, err := Validate(bus, bm, []int64{1}, 0); !errors.Is(err, errdefs.ErrInvalidInput) {
		t.Fatalf("Validate with 0 runs err = %v, want ErrInvalidInput", err)
	}
}

func TestSummarizeValidationEmpty(t *testing.T) {
	sums := SummarizeValidation(nil)
	for d, s := range sums {
		if s.N != 0 || s.MeanErr != 0 || s.MaxErr != 0 {
			t.Errorf("dir %d: nonzero summary %+v for empty input", d, s)
		}
	}
}

func TestQuickPredictMonotonicInSize(t *testing.T) {
	_, bm := calibrated(t)
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		tx, errX := bm.Predict(pcie.HostToDevice, x)
		ty, errY := bm.Predict(pcie.HostToDevice, y)
		return errX == nil && errY == nil && tx <= ty
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPredictAdditivity(t *testing.T) {
	// Splitting one transfer into two always costs one extra alpha:
	// T(a)+T(b) == T(a+b) + alpha. This is why the paper notes that
	// batching small arrays together can help (§III-B).
	_, bm := calibrated(t)
	m := bm.Dir[pcie.HostToDevice]
	prop := func(a, b uint16) bool {
		ta, errA := m.Predict(int64(a))
		tb, errB := m.Predict(int64(b))
		tab, errAB := m.Predict(int64(a) + int64(b))
		return errA == nil && errB == nil && errAB == nil &&
			math.Abs((ta+tb)-(tab+m.Alpha)) < 1e-15
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
